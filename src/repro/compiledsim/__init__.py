"""Compiled kernel tier for the simulated-GPU engine.

``backend='compiled'`` runs the same scheme recipes as ``gpusim`` but
routes the hot functional loop bodies — mex resolution, the fused wave
coloring loop, conflict detection, worklist compaction, and the
integer pricing primitives (reuse-distance scan, trace coalescing,
issue ordering) — through JIT/AOT-compiled kernels:

* numba ``@njit(cache=True)`` when numba is importable (:mod:`.nb`),
* otherwise C built with the system compiler + ctypes (:mod:`.cc`),
* otherwise the unchanged pure-NumPy paths, with a one-time warning.

Results are byte-identical across all three tiers (and to
``backend='gpusim'``): the compiled kernels are exact integer twins of
the NumPy formulations, and the pricing half charges the same
descriptors either way.  See docs/PERFORMANCE.md.
"""

from .dispatch import active, scope, tier
from .runtime import CompiledTierError, current_tier, get_kernels, warmup

__all__ = [
    "scope",
    "active",
    "tier",
    "warmup",
    "get_kernels",
    "current_tier",
    "CompiledTierError",
]
