"""Tier resolution for the compiled kernel backend.

Three tiers, best available wins under ``jit='auto'``:

1. **numba** — ``@njit(cache=True)`` kernels (:mod:`.nb`); preferred
   when numba is importable.
2. **cc** — the same kernels as C compiled with the system compiler and
   bound via ctypes (:mod:`.cc`); the on-disk ``.so`` cache plays the
   role of numba's kernel cache.
3. **numpy** — no compiled kernels at all: dispatch hooks return
   ``None`` and every call site runs its existing vectorized path.
   Reaching this tier *implicitly* (``jit='auto'`` with neither numba
   nor a C compiler usable) emits a one-time :class:`RuntimeWarning`;
   asking for it explicitly (``jit='numpy'``) is silent.

Env overrides (mainly for the CI fallback leg):

* ``REPRO_COMPILED_JIT`` — force a tier, same values as ``jit=``.
* ``REPRO_COMPILED_DISABLE`` — comma list of tiers to treat as
  unavailable (e.g. ``numba`` to exercise the C path on a machine that
  has numba, ``numba,cc`` to exercise the pure-NumPy fallback).
"""

from __future__ import annotations

import ctypes
import os
import warnings

import numpy as np

__all__ = [
    "resolve_tier",
    "get_kernels",
    "current_tier",
    "warmup",
    "CompiledTierError",
]

_TIERS = ("numba", "cc", "numpy")

_resolved: tuple[str, dict | None] | None = None
_warned_fallback = False


class CompiledTierError(RuntimeError):
    """An explicitly requested compiled tier is unavailable."""


def _disabled() -> frozenset:
    raw = os.environ.get("REPRO_COMPILED_DISABLE", "")
    return frozenset(p.strip() for p in raw.split(",") if p.strip())


def _try_numba() -> dict | None:
    if "numba" in _disabled():
        return None
    try:
        from . import nb
    except ImportError:
        return None
    return nb.load_kernels()


def _try_cc() -> dict | None:
    if "cc" in _disabled():
        return None
    try:
        from . import cc
    except ImportError:  # pragma: no cover - stdlib-only module
        return None
    try:
        return _adapt_cc(cc.load_kernels())
    except cc.CCBuildError:
        return None


def resolve_tier(jit: str = "auto") -> tuple[str, dict | None]:
    """Resolve ``jit`` to ``(tier_name, kernel_table_or_None)``.

    ``jit='auto'`` tries numba, then the C tier, then pure NumPy (with
    the one-time fallback warning).  Naming a tier requires it:
    ``jit='numba'`` / ``'cc'`` raise :class:`CompiledTierError` when
    unavailable, ``jit='numpy'`` is the explicit (silent) fallback.
    """
    env = os.environ.get("REPRO_COMPILED_JIT")
    if env:
        jit = env
    if jit not in ("auto", *_TIERS):
        raise ValueError(
            f"unknown jit tier {jit!r}; pick one of 'auto', 'numba', "
            f"'cc', 'numpy'"
        )
    if jit == "numpy":
        return "numpy", None
    if jit == "numba":
        kernels = _try_numba()
        if kernels is None:
            raise CompiledTierError(
                "jit='numba' requested but numba is not importable "
                "(or disabled via REPRO_COMPILED_DISABLE)"
            )
        return "numba", kernels
    if jit == "cc":
        kernels = _try_cc()
        if kernels is None:
            raise CompiledTierError(
                "jit='cc' requested but no working C compiler was found "
                "(or disabled via REPRO_COMPILED_DISABLE)"
            )
        return "cc", kernels
    # auto
    kernels = _try_numba()
    if kernels is not None:
        return "numba", kernels
    kernels = _try_cc()
    if kernels is not None:
        return "cc", kernels
    _warn_fallback()
    return "numpy", None


def _warn_fallback() -> None:
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    warnings.warn(
        "backend='compiled': numba is not importable and no C compiler "
        "is available; falling back to the pure-NumPy kernels. Results "
        "are identical, only wall-clock speed differs. Install numba "
        "(or a C toolchain) to enable the compiled tier.",
        RuntimeWarning,
        stacklevel=3,
    )


def get_kernels(jit: str = "auto") -> tuple[str, dict | None]:
    """Memoized :func:`resolve_tier` for the common ``jit='auto'`` path."""
    global _resolved
    if jit != "auto":
        return resolve_tier(jit)
    if _resolved is None:
        _resolved = resolve_tier("auto")
    return _resolved


def current_tier() -> str | None:
    """The memoized auto tier, or ``None`` if not resolved yet."""
    return _resolved[0] if _resolved is not None else None


def warmup(jit: str = "auto") -> str:
    """Resolve the tier and run every kernel once on tiny inputs.

    Pays numba's lazy JIT compile (or the one-off C build) up front —
    the parallel scheduler calls this from its worker initializer so
    pool workers start hot.  Returns the resolved tier name.
    """
    tier, kernels = get_kernels(jit)
    if kernels is None:
        return tier
    i64 = np.zeros(4, dtype=np.int64)
    i32 = np.zeros(4, dtype=np.int32)
    u64 = np.zeros(4, dtype=np.uint64)
    u8 = np.zeros(4, dtype=np.uint8)
    gen = np.ones(1, dtype=np.uint64)
    seg = np.array([0, 0, 1, 1], dtype=np.int64)
    cols = np.array([1, 2, 1, 3], dtype=np.int32)
    kernels["max_seg_run"](seg)
    kernels["mex_sorted"](seg, cols, 2, i32.copy(), u64.copy(), gen)
    kernels["waved_color"](
        np.array([0, 1], dtype=np.int64), seg,
        np.array([1, 1, 0, 0], dtype=np.int32),
        np.array([0, 2], dtype=np.int64), np.array([0, 4], dtype=np.int64),
        np.zeros(2, dtype=np.int32), np.zeros(2, dtype=np.int32),
        u64.copy(), gen,
    )
    kernels["detect_conflicts_full"](seg, i32, cols, u8.copy())
    kernels["detect_conflicts_subset"](seg, i64, i32, cols, u8.copy())
    tk = np.empty(8, dtype=np.int64)
    tv = np.empty(8, dtype=np.int64)
    tg = np.zeros(8, dtype=np.int64)
    kernels["reuse_prev_i32"](cols, i64.copy(), i64.copy(), tk, tv, tg, 1)
    kernels["reuse_prev_i64"](seg, i64.copy(), i64.copy(), tk, tv, tg, 2)
    kernels["issue_order"](seg, i64.copy(), i64.copy(), i64.copy(), i64.copy())
    kernels["first_occurrences"](
        seg, i64.copy(), i64.copy(), i64.copy(), tk, tg, 3,
        i64.copy(), i64.copy(), i64.copy(), i64.copy(),
    )
    kernels["pack_mask"](u8, i64.copy())
    kind = np.array([1, 2, 1, 3], dtype=np.uint8)
    smv = np.array([0, 0, 1, 0], dtype=np.int32)
    ordr = np.arange(4, dtype=np.int64)
    out3 = np.zeros(3, dtype=np.int64)
    kernels["walk_stats"](kind, smv, cols, 2, 1, 3, np.zeros(2, np.int64),
                          out3)
    tv2 = np.empty(8, dtype=np.int64)
    tg2 = np.zeros(8, dtype=np.int64)
    kernels["walk_ro"](ordr, kind, cols, smv, 1, 0, i64.copy(), tv2, tg2, 1)
    kernels["walk_l2"](
        ordr, kind, cols, smv, 1, 2, 0, u8, np.zeros(4), 0.5,
        i64.copy(), u8.copy(), tv2, tg2, 2, np.zeros(2, np.int64),
    )
    # count buffers sized 1 << (total key bits): the radix may fuse all
    # components into a single digit.
    kernels["order3"](np.zeros(4, np.int32), smv, cols, 1, 1, 2,
                      i64.copy(), i64.copy(), i64.copy(), i64.copy(),
                      np.zeros(16, np.int64))
    for stepv in (seg, None):
        kernels["first_occ3"](
            smv, stepv, seg, 1, 1, 1, i64.copy(), i64.copy(), i64.copy(),
            i64.copy(), i64.copy(), np.zeros(8, np.int64),
        )
        kernels["emit_coalesced"](
            smv, stepv, 0, seg, smv, np.zeros(4, np.int32), 1, 1, 1,
            1, 3, i64.copy(), i64.copy(), i64.copy(), i64.copy(),
            np.zeros(8, np.int64), np.zeros(4, np.uint8),
            np.zeros(4, np.int32), np.zeros(4, np.int32),
            np.zeros(4, np.int32), np.zeros(4, np.int32),
            np.zeros(4, np.int32),
        )
    kernels["merge_order"](
        np.zeros(4, np.int32), np.sort(smv), np.zeros(4, np.int32),
        np.array([0, 2, 4], dtype=np.int64), 1, 2,
        i64.copy(), i64.copy(), i64.copy(), i64.copy(),
    )
    return tier


def _reset_for_tests() -> None:
    """Forget the memoized tier and the one-time warning flag."""
    global _resolved, _warned_fallback
    _resolved = None
    _warned_fallback = False


# ----------------------------------------------------------------------
# ctypes -> array-level adapter for the C tier
# ----------------------------------------------------------------------
_I64P = ctypes.POINTER(ctypes.c_int64)
_I32P = ctypes.POINTER(ctypes.c_int32)
_U64P = ctypes.POINTER(ctypes.c_uint64)
_U8P = ctypes.POINTER(ctypes.c_uint8)
_DBLP = ctypes.POINTER(ctypes.c_double)


def _p64(a):
    return a.ctypes.data_as(_I64P)


def _p32(a):
    return a.ctypes.data_as(_I32P)


def _pu64(a):
    return a.ctypes.data_as(_U64P)


def _pu8(a):
    return a.ctypes.data_as(_U8P)


def _adapt_cc(fns: dict) -> dict:
    """Wrap the raw ctypes bindings into the array-level convention."""

    def max_seg_run(seg):
        return fns["max_seg_run"](_p64(seg), seg.shape[0])

    def mex_sorted(seg, nbr_colors, num_segments, out, stamp, gen):
        fns["mex_sorted"](
            _p64(seg), _p32(nbr_colors), seg.shape[0], num_segments,
            _p32(out), _pu64(stamp), stamp.shape[0], _pu64(gen),
        )

    def waved_color(active_ids, seg, nbr, bounds, epos, colors, out,
                    stamp, gen):
        fns["waved_color"](
            _p64(active_ids), active_ids.shape[0], _p64(seg), _p32(nbr),
            _p64(bounds), _p64(epos), bounds.shape[0] - 1,
            _p32(colors), _p32(out), _pu64(stamp), stamp.shape[0],
            _pu64(gen),
        )

    def detect_conflicts_full(seg, nbr, colors, loser):
        fns["detect_conflicts_full"](
            _p64(seg), _p32(nbr), _p32(colors), seg.shape[0], _pu8(loser)
        )

    def detect_conflicts_subset(seg, scope_ids, nbr, colors, loser):
        fns["detect_conflicts_subset"](
            _p64(seg), _p64(scope_ids), _p32(nbr), _p32(colors),
            seg.shape[0], _pu8(loser),
        )

    def reuse_prev_i32(line, idx_out, prev_out, table_key, table_val,
                       table_gen, epoch):
        return fns["reuse_prev_i32"](
            _p32(line), line.shape[0], _p64(idx_out), _p64(prev_out),
            _p64(table_key), _p64(table_val), _p64(table_gen),
            table_key.shape[0], epoch,
        )

    def reuse_prev_i64(line, idx_out, prev_out, table_key, table_val,
                       table_gen, epoch):
        return fns["reuse_prev_i64"](
            _p64(line), line.shape[0], _p64(idx_out), _p64(prev_out),
            _p64(table_key), _p64(table_val), _p64(table_gen),
            table_key.shape[0], epoch,
        )

    def issue_order(key, perm, tmp_perm, key_buf, tmp_key):
        fns["issue_order"](
            _p64(key), key.shape[0], _p64(perm), _p64(tmp_perm),
            _p64(key_buf), _p64(tmp_key),
        )

    def first_occurrences(key, out_pos, ukey, upos, table_key, table_gen,
                          epoch, perm, tmp_perm, key_buf, tmp_key):
        return fns["first_occurrences"](
            _p64(key), key.shape[0], _p64(out_pos), _p64(ukey), _p64(upos),
            _p64(table_key), _p64(table_gen), table_key.shape[0], epoch,
            _p64(perm), _p64(tmp_perm), _p64(key_buf), _p64(tmp_key),
        )

    def pack_mask(mask_arr, out):
        return fns["pack_mask"](_pu8(mask_arr), mask_arr.shape[0], _p64(out))

    def first_occ3(warp, step, line, wb, sb, lb, sel_out, perm, tmp_perm,
                   key_buf, tmp_key, count):
        return fns["first_occ3"](
            _p32(warp), None if step is None else _p64(step), _p64(line),
            line.shape[0], wb, sb, lb, _p64(sel_out), _p64(perm),
            _p64(tmp_perm), _p64(key_buf), _p64(tmp_key), _p64(count),
        )

    def _pline(line):
        return _p32(line) if line.dtype == np.int32 else _p64(line)

    def _lsuf(line):
        return "i32" if line.dtype == np.int32 else "i64"

    def walk_stats(kind, sm, line, num_sms, ldg_code, atomic_code,
                   ldg_per_sm, out3):
        fns[f"walk_stats_{_lsuf(line)}"](
            _pu8(kind), _p32(sm), _pline(line), kind.shape[0], num_sms,
            ldg_code, atomic_code, _p64(ldg_per_sm), _p64(out3),
        )

    def walk_ro(order, kind, line, sm, ldg_code, rep_sm, gap_out,
                tval, tgen, epoch):
        return fns[f"walk_ro_{_lsuf(line)}"](
            _p64(order), _pu8(kind), _pline(line), _p32(sm),
            order.shape[0], ldg_code, rep_sm, _p64(gap_out),
            _p64(tval), _p64(tgen), epoch,
        )

    def walk_l2(order, kind, line, sm, ldg_code, store_code, rep_sm,
                rep_hits, draws, rate, l2_gap, l2_stall, tval, tgen,
                epoch, out2):
        fns[f"walk_l2_{_lsuf(line)}"](
            _p64(order), _pu8(kind), _pline(line), _p32(sm),
            order.shape[0], ldg_code, store_code, rep_sm,
            _pu8(rep_hits), draws.ctypes.data_as(_DBLP), rate,
            _p64(l2_gap), _pu8(l2_stall), _p64(tval), _p64(tgen),
            epoch, _p64(out2),
        )

    def order3(wave, warp, step, vb, wb, sb, perm, tmp_perm, key_buf,
               tmp_key, count):
        wsuf = "w32" if warp.dtype == np.int32 else "w64"
        ssuf = "s32" if step.dtype == np.int32 else "s64"
        wp = _p32(warp) if warp.dtype == np.int32 else _p64(warp)
        sp = _p32(step) if step.dtype == np.int32 else _p64(step)
        fns[f"order3_{wsuf}{ssuf}"](
            _p32(wave), wp, sp, wave.shape[0], vb, wb, sb, _p64(perm),
            _p64(tmp_perm), _p64(key_buf), _p64(tmp_key), _p64(count),
        )

    def emit_coalesced(warp, step, cstep, line, sm, wave, wb, sb, lb,
                       kind, seq_off, perm, tmp_perm, key_buf, tmp_key,
                       count, out_kind, out_line, out_sm, out_warp,
                       out_wave, out_step):
        return fns["emit_coalesced"](
            _p32(warp), None if step is None else _p64(step), cstep,
            _p64(line), _p32(sm), _p32(wave), line.shape[0], wb, sb, lb,
            kind, seq_off, _p64(perm), _p64(tmp_perm), _p64(key_buf),
            _p64(tmp_key), _p64(count), _pu8(out_kind), _p32(out_line),
            _p32(out_sm), _p32(out_warp), _p32(out_wave), _p32(out_step),
        )

    def merge_order(wave, warp, step, seg_off, wb, sb, heap_key,
                    heap_seg, pos, perm):
        return fns["merge_order_i32"](
            _p32(wave), _p32(warp), _p32(step), _p64(seg_off),
            seg_off.shape[0] - 1, wb, sb, _p64(heap_key), _p64(heap_seg),
            _p64(pos), _p64(perm),
        )

    return {
        "max_seg_run": max_seg_run,
        "mex_sorted": mex_sorted,
        "waved_color": waved_color,
        "detect_conflicts_full": detect_conflicts_full,
        "detect_conflicts_subset": detect_conflicts_subset,
        "reuse_prev_i32": reuse_prev_i32,
        "reuse_prev_i64": reuse_prev_i64,
        "issue_order": issue_order,
        "first_occurrences": first_occurrences,
        "first_occ3": first_occ3,
        "pack_mask": pack_mask,
        "walk_stats": walk_stats,
        "walk_ro": walk_ro,
        "walk_l2": walk_l2,
        "order3": order3,
        "emit_coalesced": emit_coalesced,
        "merge_order": merge_order,
    }
