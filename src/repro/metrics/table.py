"""Plain-text table rendering for experiment reports.

Benchmarks print the same rows the paper's tables/figures report; this
module owns the formatting so every harness emits consistent output.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_float"]


def format_float(value, digits: int = 2) -> str:
    """Compact numeric formatting (ints stay ints; floats get ``digits``)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
    digits: int = 2,
) -> str:
    """Render an aligned ASCII table.

    Column widths adapt to content; numeric cells are right-aligned,
    text cells left-aligned (decided per column by its first data cell).
    """
    str_rows = [[format_float(c, digits) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(f"row has {len(r)} cells, expected {ncols}")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(ncols)
    ]
    numeric = [
        bool(str_rows) and _is_numeric(str_rows[0][i]) for i in range(ncols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(
            c.rjust(widths[i]) if numeric[i] else c.ljust(widths[i])
            for i, c in enumerate(cells)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("x%"))
        return True
    except ValueError:
        return False
