"""Speedup arithmetic shared by figures 1 and 7."""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["speedup", "geomean", "normalize_to_baseline"]


def speedup(baseline_time: float, time: float) -> float:
    """``baseline / time``; the paper's y-axis for Figs. 1 and 7."""
    if time <= 0:
        raise ValueError("time must be positive")
    return baseline_time / time


def geomean(values: Iterable[float]) -> float:
    """Geometric mean — the right average for speedup ratios."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize_to_baseline(times: dict[str, float], baseline: str) -> dict[str, float]:
    """Per-scheme speedups relative to ``times[baseline]``."""
    if baseline not in times:
        raise KeyError(f"baseline {baseline!r} missing from {sorted(times)}")
    base = times[baseline]
    return {k: speedup(base, v) for k, v in times.items()}
