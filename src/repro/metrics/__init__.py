"""Experiment metrics: records, tables, speedup math."""

from .recorder import ExperimentRecord, Recorder
from .speedup import geomean, normalize_to_baseline, speedup
from .table import format_float, format_table

__all__ = [
    "ExperimentRecord",
    "Recorder",
    "format_float",
    "format_table",
    "geomean",
    "normalize_to_baseline",
    "speedup",
]
