"""Experiment records: structured results the benchmark harness emits.

Each benchmark produces :class:`ExperimentRecord` rows; the recorder keeps
them, renders the paper-matching table, and can persist JSON so
EXPERIMENTS.md numbers are regenerable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .table import format_table

__all__ = ["ExperimentRecord", "RoundRecord", "Recorder"]


@dataclass(frozen=True)
class ExperimentRecord:
    """One measured cell of a paper table/figure."""

    experiment: str  # e.g. "fig7"
    graph: str
    scheme: str
    metric: str  # e.g. "speedup", "colors", "time_us"
    value: float
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class RoundRecord:
    """One BSP round of a device scheme, as emitted by the engine loop.

    The execution engine produces these when a recorder is attached to the
    :class:`~repro.engine.context.ExecutionContext` — the per-round
    convergence traces behind the iteration/conflict analyses.
    """

    scheme: str
    graph: str
    iteration: int
    active: int  # vertices (or worklist entries) processed this round
    conflicts: int  # vertices kicked back for recoloring
    time_us: float  # summed kernel time of the round's launches


@dataclass
class Recorder:
    """Accumulates records for one experiment run."""

    records: list[ExperimentRecord] = field(default_factory=list)
    rounds: list[RoundRecord] = field(default_factory=list)

    def add(
        self,
        experiment: str,
        graph: str,
        scheme: str,
        metric: str,
        value: float,
        **extra,
    ) -> ExperimentRecord:
        rec = ExperimentRecord(experiment, graph, scheme, metric, float(value), extra)
        self.records.append(rec)
        return rec

    def add_round(
        self,
        *,
        scheme: str,
        graph: str,
        iteration: int,
        active: int,
        conflicts: int,
        time_us: float,
    ) -> RoundRecord:
        """Record one engine round (called by the engine's round loop)."""
        rec = RoundRecord(scheme, graph, iteration, active, conflicts, float(time_us))
        self.rounds.append(rec)
        return rec

    def values(self, *, experiment=None, graph=None, scheme=None, metric=None):
        """Filtered record list (None matches everything)."""
        out = self.records
        if experiment is not None:
            out = [r for r in out if r.experiment == experiment]
        if graph is not None:
            out = [r for r in out if r.graph == graph]
        if scheme is not None:
            out = [r for r in out if r.scheme == scheme]
        if metric is not None:
            out = [r for r in out if r.metric == metric]
        return out

    def pivot(self, metric: str, *, experiment: str | None = None) -> str:
        """Graphs-by-scheme table of one metric, like the paper's figures."""
        recs = self.values(metric=metric, experiment=experiment)
        graphs = list(dict.fromkeys(r.graph for r in recs))
        schemes = list(dict.fromkeys(r.scheme for r in recs))
        cell = {(r.graph, r.scheme): r.value for r in recs}
        rows = [
            [g] + [cell.get((g, s), float("nan")) for s in schemes] for g in graphs
        ]
        return format_table(["graph"] + schemes, rows, title=f"{metric}:")

    def save_json(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps([asdict(r) for r in self.records], indent=1), encoding="utf-8"
        )

    @classmethod
    def load_json(cls, path: str | Path) -> "Recorder":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(records=[ExperimentRecord(**d) for d in data])
