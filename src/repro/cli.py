"""Command-line interface: ``repro-color`` / ``python -m repro``.

Subcommands::

    repro-color color    --graph rmat-er --method data-ldg
    repro-color compare  --graph thermal2
    repro-color suite                       # Table I
    repro-color generate --graph rmat-g --out g.npz
    repro-color sweep    --graph rmat-er --method data-base

``--graph`` accepts a suite name (Table I), a ``.npz`` cache, a ``.mtx``
MatrixMarket file, or an edge-list path — so the real SuiteSparse inputs
drop in directly when available.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .coloring.api import ENGINE_RECIPES, EVALUATED_SCHEMES, METHODS, color_graph
from .graph.csr import CSRGraph
from .graph.generators.suite import SUITE, load_graph
from .graph.stats import compute_stats
from .metrics.table import format_table

__all__ = ["main", "resolve_graph"]

#: Suffixes parsed as whitespace-separated edge lists.
_EDGELIST_SUFFIXES = (".el", ".txt", ".edges", ".edgelist", ".tsv")


def _parse_faults(text):
    """Validate a ``--faults`` plan up front: bad grammar is a usage
    error, not a traceback from the middle of a run."""
    from .faults import resolve_faults

    try:
        return resolve_faults(text)
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"bad --faults plan: {exc}")


def _guard_errors():
    """Exceptions a strict health policy raises on purpose."""
    from .distributed import DistributedColoringError
    from .engine.errors import AuditError, ConvergenceError, InvariantViolation
    from .faults import FaultInjected
    from .parallel import ShardedColoringError
    from .resilience import Cancelled, CheckpointError, DeadlineExceeded

    return (
        AuditError, ConvergenceError, InvariantViolation, FaultInjected,
        ShardedColoringError, DistributedColoringError,
        DeadlineExceeded, Cancelled, CheckpointError,
    )


def resolve_graph(spec: str, *, scale_div: int | None = None) -> CSRGraph:
    """Turn a ``--graph`` argument into a :class:`CSRGraph`."""
    if spec in SUITE:
        return load_graph(spec, scale_div=scale_div)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(
            f"unknown graph {spec!r}: not a suite name ({', '.join(SUITE)}) "
            f"and no such file"
        )
    if path.suffix == ".npz":
        from .graph.io.binary import load_npz

        return load_npz(path)
    if path.suffix == ".csrbin":
        from .graph.io.stream import read_csr_bin

        # mmap'd and unvalidated on purpose: these containers exist so
        # out-of-core graphs can be colored without ever loading O(m)
        # into private memory (pair with --stream-mb).
        return read_csr_bin(path, mmap=True, validate=False)
    if path.suffix in (".mtx", ".gz"):
        from .graph.io.matrix_market import read_matrix_market

        return read_matrix_market(path)
    if path.suffix in _EDGELIST_SUFFIXES:
        from .graph.io.edgelist import read_edgelist

        return read_edgelist(path)
    raise SystemExit(
        f"cannot read {spec!r}: unrecognized extension {path.suffix!r}. "
        f"Supported formats: .npz (save_npz cache), .csrbin (mmap "
        f"container), .mtx/.gz (MatrixMarket), "
        f"edge list ({', '.join(_EDGELIST_SUFFIXES)})"
    )


def _cmd_color(args) -> int:
    graph = resolve_graph(args.graph, scale_div=args.scale_div)
    kwargs = {}
    if args.method not in ("sequential", "gm", "jp", "jp-lf", "balanced-greedy"):
        kwargs["block_size"] = args.block_size  # CPU schemes take no launch config
    if args.backend != "gpusim":
        if args.method not in ENGINE_RECIPES:
            raise SystemExit(
                f"--backend applies to device schemes only "
                f"({', '.join(sorted(ENGINE_RECIPES))}), not {args.method!r}"
            )
        kwargs["backend"] = args.backend
    if args.observe:
        kwargs["observe"] = args.observe
    elif args.trace_out:
        kwargs["observe"] = "trace"
    if args.faults:
        kwargs["faults"] = _parse_faults(args.faults)
    if args.health:
        kwargs["health"] = args.health
    if args.deadline_ms is not None:
        kwargs["deadline_ms"] = args.deadline_ms
    streaming = args.stream or args.stream_mb is not None
    if not args.devices:
        for flag, value in (
            ("--topology", args.topology),
            ("--transport", args.transport),
            ("--lockstep", args.lockstep),
        ):
            if value:
                raise SystemExit(f"{flag} needs --devices")
    if args.devices:
        if args.shards or streaming:
            raise SystemExit("--devices does not combine with --shards/--stream")
        if args.cache:
            raise SystemExit("--cache does not combine with --devices")
        from .distributed import color_distributed

        try:
            result = color_distributed(
                graph,
                args.method,
                devices=args.devices,
                topology=args.topology or "pcie",
                transport=args.transport,
                speculate=not args.lockstep,
                workers=args.workers,
                backend=kwargs.pop("backend", None),
                observe=kwargs.pop("observe", None),
                faults=kwargs.pop("faults", None),
                health=kwargs.pop("health", None),
                store=args.store,
                **kwargs,
            )
        except _guard_errors() as exc:
            print(f"FAILED ({type(exc).__name__}): {exc}")
            return 1
        stats = result.shard_stats
        print(result.summary())
        if stats.get("degraded"):
            print(
                f"devices: {stats['num_shards']} failed "
                f"(devices {stats['failed_devices']}), degraded to one "
                f"single-device {stats['degraded']} run"
            )
        else:
            print(
                f"devices: {stats['devices']} @ {stats['topology']} "
                f"({stats['transport']}, "
                f"{'speculative' if stats['speculate'] else 'lockstep'}): "
                f"{stats['resolution_rounds']} resolution rounds, "
                f"{stats['sync_rounds']} pair syncs, "
                f"{stats['halo_bytes_modeled']} halo B modeled, "
                f"{stats['speculation_hits']} speculation hits"
            )
    elif args.shards or streaming:
        if args.cache:
            raise SystemExit("--cache does not combine with --shards/--stream")
        if args.store and streaming:
            raise SystemExit(
                "--store applies to worker shipping; streaming runs "
                "in-process (use a .csrbin graph for out-of-core input)"
            )
        from .parallel import color_sharded

        try:
            result = color_sharded(
                graph,
                args.method,
                num_shards=args.shards or 4,
                workers=args.workers,
                backend=kwargs.pop("backend", None),
                observe=kwargs.pop("observe", None),
                faults=kwargs.pop("faults", None),
                health=kwargs.pop("health", None),
                store=args.store,
                stream=args.stream,
                memory_budget_mb=args.stream_mb,
                **kwargs,
            )
        except _guard_errors() as exc:
            print(f"FAILED ({type(exc).__name__}): {exc}")
            return 1
        stats = result.shard_stats
        print(result.summary())
        if stats.get("degraded"):
            print(
                f"shards: {stats['num_shards']} failed "
                f"(shards {stats['failed_shards']}), degraded to one "
                f"{stats['degraded']} run"
            )
        elif stats.get("mode") == "stream":
            print(
                f"windows: {stats['num_shards']} (peak window "
                f"{stats['peak_window_bytes']} B), "
                f"{stats['resolution_rounds']} resolution rounds, "
                f"{stats['recolored']} recolored"
            )
        else:
            print(
                f"shards: {stats['num_shards']}, "
                f"boundary {stats['boundary_vertices']} vertices, "
                f"{stats['resolution_rounds']} resolution rounds, "
                f"{stats['recolored']} recolored"
            )
    else:
        if args.store:
            raise SystemExit(
                "--store needs worker processes: combine with --shards "
                "or --devices (or use the batch subcommand)"
            )
        if args.cache:
            kwargs["cache"] = args.cache
        try:
            result = color_graph(graph, method=args.method, **kwargs)
        except _guard_errors() as exc:
            print(f"FAILED ({type(exc).__name__}): {exc}")
            return 1
        print(result.summary())
        if result.cache_hit:
            print("(served from result cache)")
    report = result.robustness
    if report is not None:
        fired = report.get("fired", [])
        degradations = report.get("degradations", [])
        print(
            f"robustness: {len(fired)} fault(s) fired, "
            f"{len(degradations)} degradation chain(s) engaged"
        )
        for d in degradations:
            print(
                f"  degraded {d['chain']}: {d['from']} -> {d['to']} "
                f"({d['reason']}, x{d['count']})"
            )
    if args.faults_report:
        import json

        path = Path(args.faults_report)
        path.write_text(
            json.dumps(report or {}, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote robustness report -> {path}")
    obs = result.observation
    if obs is not None and obs.tracer is not None:
        print()
        print(obs.flame_summary())
        if args.trace_out:
            path = obs.write_chrome_trace(args.trace_out)
            print(f"\nwrote Chrome trace -> {path} (open in chrome://tracing)")
    if obs is not None and obs.recorder is not None and obs.recorder.rounds:
        rows = [
            [r.iteration, r.active, r.conflicts, round(r.time_us, 1)]
            for r in obs.recorder.rounds
        ]
        print()
        print(format_table(["round", "active", "conflicts", "us"], rows,
                           title="per-round trace:"))
    return 0


def _cmd_trace(args) -> int:
    graph = resolve_graph(args.graph, scale_div=args.scale_div)
    kwargs = {"block_size": args.block_size} if args.method in ENGINE_RECIPES else {}
    if args.backend != "gpusim":
        kwargs["backend"] = args.backend
    result = color_graph(graph, method=args.method, observe="trace", **kwargs)
    obs = result.observation
    print(result.summary() + "\n")
    print(obs.flame_summary(top=args.top))
    out = args.out or f"{graph.name}-{args.method}-trace.json"
    path = obs.write_chrome_trace(out)
    print(f"\nwrote Chrome trace -> {path} (open in chrome://tracing or Perfetto)")
    if args.jsonl:
        path = obs.write_jsonl(args.jsonl)
        print(f"wrote JSONL event log -> {path}")
    return 0


def _cmd_batch(args) -> int:
    import hashlib

    from .engine import ExecutionContext, color_many

    resolved: dict[str, CSRGraph] = {}  # repeat specs share one object/upload
    for spec in args.graphs:
        if spec not in resolved:
            resolved[spec] = resolve_graph(spec, scale_div=args.scale_div)
    graphs = [resolved[spec] for spec in args.graphs]
    observe = args.observe or ("trace" if args.trace_out else None)
    parallel = (
        bool(args.workers)
        or args.cache is not None
        or args.store is not None
        or observe is not None
        or args.faults is not None
        or args.health is not None
        or args.deadline_ms is not None
    )

    if args.topology and not args.devices:
        raise SystemExit("--topology needs --devices")

    cache_obj = None
    ctx = None
    failures = []
    if args.devices:
        if args.cache:
            raise SystemExit("--cache does not combine with --devices")
        from .distributed import color_distributed

        results = []
        sync_rounds = halo_bytes = 0
        for g in graphs:
            try:
                r = color_distributed(
                    g,
                    args.method,
                    devices=args.devices,
                    topology=args.topology or "pcie",
                    workers=args.workers,
                    backend=args.backend,
                    store=args.store,
                    observe=observe,
                    faults=_parse_faults(args.faults) if args.faults else None,
                    health=args.health,
                    deadline_ms=args.deadline_ms,
                    block_size=args.block_size,
                )
            except _guard_errors() as exc:
                print(f"FAILED ({type(exc).__name__}): {exc}", file=sys.stderr)
                return 1
            results.append(r)
            sync_rounds += r.shard_stats["sync_rounds"]
            halo_bytes += r.shard_stats["halo_bytes_modeled"]
        title = (
            f"batch: distributed({args.method})x{args.devices}"
            f"@{args.topology or 'pcie'} on {len(graphs)} graphs "
            f"({sync_rounds} pair syncs, {halo_bytes} halo B modeled)"
        )
    elif parallel:
        from .parallel import resolve_cache

        cache_obj = resolve_cache(args.cache)
        try:
            results = color_many(
                graphs,
                method=args.method,
                block_size=args.block_size,
                backend=args.backend,
                workers=args.workers,
                cache=cache_obj,
                store=args.store,
                observe=observe,
                faults=_parse_faults(args.faults) if args.faults else None,
                health=args.health,
                deadline_ms=args.deadline_ms,
            )
        except _guard_errors() as exc:
            print(f"FAILED ({type(exc).__name__}): {exc}", file=sys.stderr)
            return 1
        failures = [r for r in results if not r]
        title = (
            f"batch: {args.method} on {len(graphs)} graphs "
            f"(workers={args.workers or 1}, {args.backend})"
        )
    else:
        ctx = ExecutionContext(backend=args.backend)
        results = ctx.color_many(
            graphs, method=args.method, block_size=args.block_size
        )
        title = (
            f"batch: {args.method} on {len(graphs)} graphs ({ctx.backend.name})"
        )

    # --digest swaps the (scheduler-dependent) sim_us column for a colors
    # digest, so serial and parallel outputs compare byte-for-byte.
    rows = []
    for g, r in zip(graphs, results):
        if not r:
            rows.append([g.name, "FAILED", r.attempts, r.error[:40]])
        elif args.digest:
            rows.append([
                g.name, r.num_colors, r.iterations,
                hashlib.sha256(r.colors.tobytes()).hexdigest()[:16],
            ])
        else:
            rows.append([
                g.name, r.num_colors, r.iterations, round(r.total_time_us, 1),
            ])
    headers = (
        ["graph", "colors", "iters", "sha16"]
        if args.digest
        else ["graph", "colors", "iters", "sim_us"]
    )
    print(format_table(headers, rows, title=title))

    if ctx is not None:
        pool = getattr(ctx.backend, "device", None)
        print(
            f"uploads: {ctx.uploads} (reused {ctx.upload_reuses})"
            + (
                f"; buffer pool: {pool.pool_hits} hits / {pool.pool_misses} misses"
                if pool is not None
                else ""
            )
        )
    if cache_obj is not None:
        stats = cache_obj.stats()
        print(
            f"result cache: {stats['hits']} hits / {stats['misses']} misses "
            f"({stats['entries']} entries)"
        )
    for f in failures:
        print(
            f"FAILED job {f.index} ({f.method} on {f.graph}) after "
            f"{f.attempts} attempts: {f.error}",
            file=sys.stderr,
        )
    if args.trace_out:
        obs = next((r.observation for r in results if r), None)
        if obs is not None and obs.tracer is not None:
            path = obs.write_chrome_trace(args.trace_out)
            print(f"wrote Chrome trace -> {path} (open in chrome://tracing)")
    return 1 if failures else 0


def _cmd_compare(args) -> int:
    graph = resolve_graph(args.graph, scale_div=args.scale_div)
    rows = []
    baseline = None
    for scheme in EVALUATED_SCHEMES:
        result = color_graph(graph, method=scheme)
        if scheme == "sequential":
            baseline = result.total_time_us
        rows.append(
            [
                scheme,
                result.num_colors,
                result.iterations,
                round(result.total_time_us, 1),
                round(baseline / result.total_time_us, 2) if baseline else 1.0,
            ]
        )
    print(
        format_table(
            ["scheme", "colors", "iters", "sim_us", "speedup"],
            rows,
            title=f"{graph.name}: n={graph.num_vertices} m={graph.num_edges}",
        )
    )
    return 0


def _cmd_suite(args) -> int:
    rows = []
    for name, entry in SUITE.items():
        g = load_graph(name, scale_div=args.scale_div)
        s = compute_stats(g)
        p = entry.paper
        rows.append(
            [
                name,
                s.num_vertices,
                s.num_edges,
                s.min_degree,
                s.max_degree,
                round(s.avg_degree, 2),
                round(s.variance, 2),
                f"{p.avg_degree:.2f}/{p.variance:.2f}",
            ]
        )
    print(
        format_table(
            ["graph", "n", "m", "min", "max", "avg", "var", "paper avg/var"],
            rows,
            title="Table I (generated stand-ins vs paper degree stats)",
        )
    )
    return 0


def _cmd_generate(args) -> int:
    from .graph.io.binary import save_npz

    graph = resolve_graph(args.graph, scale_div=args.scale_div)
    save_npz(graph, args.out)
    print(f"wrote {graph} -> {args.out}")
    return 0


def _cmd_sweep(args) -> int:
    graph = resolve_graph(args.graph, scale_div=args.scale_div)
    rows = []
    for bs in (32, 64, 128, 256, 512):
        result = color_graph(graph, method=args.method, block_size=bs)
        rows.append([bs, round(result.total_time_us, 1), result.num_colors])
    print(
        format_table(
            ["block_size", "sim_us", "colors"],
            rows,
            title=f"Fig. 8 sweep: {args.method} on {graph.name}",
        )
    )
    return 0


def _cmd_verify(args) -> int:
    from .coloring.base import ColoringError, load_result

    graph = resolve_graph(args.graph, scale_div=args.scale_div)
    result = load_result(args.colors)
    try:
        result.validate(graph)
    except ColoringError as exc:
        print(f"INVALID: {exc}")
        return 1
    print(
        f"OK: {result.scheme} coloring of {graph.name} is proper and complete "
        f"({result.num_colors} colors)"
    )
    return 0


def _cmd_profile(args) -> int:
    from .gpusim.device import Device
    from .gpusim.profiler import profile_report, timeline_report

    graph = resolve_graph(args.graph, scale_div=args.scale_div)
    if args.method in ("sequential", "gm", "jp", "jp-lf", "balanced-greedy",
                       "iterated-greedy", "dsatur"):
        print(f"{args.method} launches no simulated kernels (CPU scheme)")
        return 0
    device = Device()
    result = color_graph(graph, method=args.method, device=device)
    print(result.summary() + "\n")
    print(profile_report(result.profiles, top=args.top))
    print()
    print(timeline_report(device))
    return 0


def _cmd_serve(args) -> int:
    """Drive the async coloring service with a concurrent request storm.

    Submits ``--requests`` concurrent requests for the same graph (the
    duplicate-heavy shape the coalescer exists for), optionally runs a
    dynamic session of random edits, and prints the admission /
    coalescing / batching counters.  ``--check`` turns the run into a
    smoke gate: nonzero exit unless the storm coalesced onto exactly one
    engine computation, every returned coloring is byte-identical to a
    direct ``color_graph`` run, a deliberately expired-deadline probe
    came back as a structured ``DeadlineExceeded`` (not a success, not a
    bare error), the circuit breaker closed out healthy, and the service
    shut down cleanly.
    """
    import asyncio

    import numpy as np

    from .engine.config import RunConfig
    from .resilience import DeadlineExceeded
    from .service import ColoringService, ServiceClient

    graph = resolve_graph(args.graph, scale_div=args.scale_div)
    config = RunConfig(
        workers=args.workers,
        store=args.store,
        cache=args.cache,
        observe="trace" if args.trace_out else None,
    )
    service = ColoringService(
        args.method,
        config=config,
        max_queue=args.max_queue,
        batch_max=args.batch_max,
    )

    async def drive():
        async with service:
            client = ServiceClient(service)
            results = await client.color_many(
                [graph] * args.requests, priority="normal"
            )
            # Deadline probe: a request admitted with an already-spent
            # budget must fail *structurally* — the structured error (and
            # a breaker still closed afterwards) is what --check gates on.
            deadline_probe = None
            try:
                await service.submit(graph, deadline_ms=0.0)
            except DeadlineExceeded as exc:
                deadline_probe = exc.to_dict()
            except Exception as exc:  # wrong shape: recorded, fails --check
                deadline_probe = {"error": type(exc).__name__,
                                  "detail": str(exc)}
            session_report = None
            if args.session_edits:
                rng = np.random.default_rng(7)
                n = graph.num_vertices
                sess = await service.session(graph, max_drift=args.max_drift)
                for _ in range(args.session_edits):
                    u, v = (int(x) for x in rng.integers(0, n, size=2))
                    if u == v:
                        continue
                    g_now = sess._dyn
                    if g_now.has_edge(u, v):
                        await sess.delete(u, v)
                    else:
                        await sess.insert(u, v)
                final = await sess.close()
                g_now.validate()
                session_report = final.extra.peek("dynamic")
            return results, session_report, deadline_probe

    results, session_report, deadline_probe = asyncio.run(drive())
    stats = service.stats
    direct = color_graph(graph, args.method, validate=False)
    identical = all(
        r is not None and np.array_equal(r.colors, direct.colors)
        for r in results
    )

    rows = [
        ("requests", stats["submitted"]),
        ("completed", stats["completed"]),
        ("coalesced", stats["coalesced"]),
        ("cache hits", stats["cache_hits"]),
        ("engine runs", stats["engine_runs"]),
        ("batches", stats["batches"]),
        ("rejected", stats["rejected"]),
        ("failed", stats["failed"]),
        ("deadline hits", stats["deadline_hits"]),
        ("cancelled", stats["cancelled"]),
        ("dispatcher restarts", stats["dispatcher_restarts"]),
        ("breaker", f"{stats['breaker']['state']} "
                    f"(trips {stats['breaker']['trips']}, "
                    f"rejections {stats['breaker']['rejections']})"),
        ("deadline probe", (deadline_probe or {}).get("error", "MISSING")),
        ("digest-identical", "yes" if identical else "NO"),
    ]
    if session_report is not None:
        rows += [
            ("session version", session_report["version"]),
            ("session colors", session_report["num_colors"]),
            ("session repaired", session_report["repaired"]),
            ("session improved", session_report["improved"]),
            ("compactions", stats["compactions"]),
        ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:<{width}}  {value}")

    if args.trace_out and service.observation.tracer is not None:
        from .obs import write_chrome_trace

        write_chrome_trace(service.observation.tracer, args.trace_out)
        print(f"trace written to {args.trace_out}")

    if args.check:
        problems = []
        if stats["coalesced"] <= 0:
            problems.append("no requests coalesced")
        if stats["engine_runs"] != 1:
            problems.append(f"expected 1 engine run, saw {stats['engine_runs']}")
        if not identical:
            problems.append("service colors differ from direct color_graph")
        if stats["failed"] or stats["rejected"]:
            problems.append("requests failed or were rejected")
        if stats["queue_depth"] or stats["inflight"]:
            problems.append("service did not drain cleanly")
        if (deadline_probe or {}).get("error") != "DeadlineExceeded":
            problems.append(
                f"expired-deadline probe did not raise DeadlineExceeded "
                f"(got {deadline_probe!r})"
            )
        elif deadline_probe.get("where") != "admission":
            problems.append(
                f"deadline probe failed at {deadline_probe.get('where')!r}, "
                f"expected 'admission'"
            )
        if stats["deadline_hits"] < 1:
            problems.append("service did not count the deadline hit")
        if stats["breaker"]["state"] != "closed":
            problems.append(
                f"circuit breaker is {stats['breaker']['state']!r} after a "
                f"healthy storm (expected 'closed')"
            )
        if problems:
            print("CHECK FAILED: " + "; ".join(problems))
            return 1
        print("CHECK OK")
    return 0


def _method_arg(value: str) -> str:
    """Canonicalize a --method argument through the registry aliases.

    The same resolver backs color_graph/color_sharded, so the CLI accepts
    and rejects exactly the spellings the API does, with the same
    did-you-mean message.
    """
    from .coloring.registry import resolve_method

    try:
        return resolve_method(value, METHODS, entry_point="repro-color")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _topology_arg(value: str) -> str:
    """Validate a --topology preset with the API's own error message."""
    from .distributed.topology import TOPOLOGIES, unknown_topology_error

    if value not in TOPOLOGIES:
        raise argparse.ArgumentTypeError(
            str(unknown_topology_error(value, entry_point="repro-color"))
        )
    return value


def _engine_method_arg(value: str) -> str:
    from .coloring.registry import resolve_method

    try:
        return resolve_method(value, ENGINE_RECIPES, entry_point="repro-color")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-color",
        description="Speculative-greedy GPU graph coloring (IPPS'16 reproduction)",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale-div",
        type=int,
        default=None,
        help="downscale divisor for suite graphs (default: REPRO_SCALE_DIV or 16)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("color", parents=[common], help="color one graph with one scheme")
    p.add_argument("--graph", required=True)
    p.add_argument("--method", default="data-ldg", type=_method_arg, metavar="METHOD")
    p.add_argument("--block-size", type=int, default=128)
    p.add_argument(
        "--backend", default="gpusim", choices=("gpusim", "cpusim", "compiled"),
        help="execution substrate for device schemes (default: gpusim)",
    )
    p.add_argument(
        "--observe", default=None, choices=("trace", "profile", "rounds"),
        help="attach observation: span trace, kernel profiles, or per-round records",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON here (implies --observe trace)",
    )
    p.add_argument(
        "--cache", default=None, metavar="DIR|memory",
        help="content-addressed result cache: 'memory' or a directory path",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition-sharded coloring: split into N shards, color "
        "concurrently, resolve boundary conflicts",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --shards (default: serial)",
    )
    p.add_argument(
        "--store", default=None, metavar="KIND",
        help="graph arena for worker processes: 'heap' (pickle, default), "
        "'shm' (shared-memory segments), or 'mmap'/'mmap:<dir>' "
        "(on-disk containers); combine with --shards --workers",
    )
    p.add_argument(
        "--devices", type=int, default=None, metavar="N",
        help="multi-device distributed coloring: one contiguous shard "
        "per simulated device, boundary repair via per-round halo "
        "exchange priced on the interconnect (colors byte-identical "
        "to --shards N)",
    )
    p.add_argument(
        "--topology", type=_topology_arg, default=None, metavar="KIND",
        help="interconnect model for --devices: 'pcie' (default, shared "
        "bus), 'nvlink' (all-to-all peers), or 'ring' (hop-routed)",
    )
    p.add_argument(
        "--transport", default=None, choices=("local", "pool"),
        help="how device shards execute with --devices: in-process "
        "contexts ('local', default) or worker processes ('pool'; "
        "implied by --workers)",
    )
    p.add_argument(
        "--lockstep", action="store_true",
        help="disable speculative boundary coloring: full halo exchange "
        "at every round's global barrier (same colors, more traffic)",
    )
    p.add_argument(
        "--stream", action="store_true",
        help="color --shards windows sequentially with bounded peak "
        "memory (byte-identical colors to the non-streamed run)",
    )
    p.add_argument(
        "--stream-mb", type=float, default=None, metavar="MB",
        help="stream with a peak-memory budget: window count sized so "
        "one window's working set fits MB (implies --stream)",
    )
    p.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="deterministic fault-injection plan, e.g. 'seed=7; "
        "kernel-transient: kernel=topo-color-0' (see docs/ROBUSTNESS.md)",
    )
    p.add_argument(
        "--health", default=None, choices=("default", "strict", "off"),
        help="guard-rail policy: convergence watchdog, round invariants, "
        "end-of-run audit ('strict' disables degradation chains)",
    )
    p.add_argument(
        "--faults-report", default=None, metavar="PATH",
        help="write the run's robustness report (fired faults, "
        "degradation events) as JSON",
    )
    p.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="end-to-end budget: checked cooperatively at round/window/"
        "sync boundaries; overruns exit 1 with a structured "
        "DeadlineExceeded instead of running on",
    )
    p.set_defaults(fn=_cmd_color)

    p = sub.add_parser(
        "trace", parents=[common],
        help="span-trace one run and export a Chrome trace (chrome://tracing)",
    )
    p.add_argument("graph", help="suite name or graph file")
    p.add_argument("method", nargs="?", default="data-ldg", type=_method_arg, metavar="METHOD")
    p.add_argument("--out", default=None, help="Chrome trace path "
                   "(default: <graph>-<method>-trace.json)")
    p.add_argument("--jsonl", default=None, help="also write a flat JSONL event log")
    p.add_argument("--block-size", type=int, default=128)
    p.add_argument("--backend", default="gpusim", choices=("gpusim", "cpusim", "compiled"))
    p.add_argument("--top", type=int, default=None,
                   help="show only the N hottest rows in the flame summary")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "batch", parents=[common],
        help="color several graphs through one execution context "
        "(uploads cached, buffers pooled)",
    )
    p.add_argument("--graphs", required=True, nargs="+")
    p.add_argument("--method", default="data-ldg", type=_engine_method_arg, metavar="METHOD")
    p.add_argument("--block-size", type=int, default=128)
    p.add_argument("--backend", default="gpusim", choices=("gpusim", "cpusim", "compiled"))
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the batch across N worker processes "
        "(colors byte-identical to serial; timings may differ)",
    )
    p.add_argument(
        "--cache", default=None, metavar="DIR|memory",
        help="content-addressed result cache: 'memory' or a directory path",
    )
    p.add_argument(
        "--store", default=None, metavar="KIND",
        help="graph arena for worker processes: 'heap' (pickle, default), "
        "'shm', or 'mmap'/'mmap:<dir>' — workers attach zero-copy "
        "instead of unpickling private graph copies",
    )
    p.add_argument(
        "--devices", type=int, default=None, metavar="N",
        help="run each graph as a multi-device distributed coloring "
        "(colors byte-identical to --shards N on the color subcommand)",
    )
    p.add_argument(
        "--topology", type=_topology_arg, default=None, metavar="KIND",
        help="interconnect model for --devices: 'pcie' (default), "
        "'nvlink', or 'ring'",
    )
    p.add_argument(
        "--observe", default=None, choices=("trace", "profile", "rounds"),
        help="attach observation to the whole batch",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the merged batch Chrome trace here (implies --observe trace)",
    )
    p.add_argument(
        "--digest", action="store_true",
        help="print a colors digest instead of sim_us (scheduler-independent "
        "output, for byte-identity checks)",
    )
    p.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="deterministic fault-injection plan applied to every job "
        "(see docs/ROBUSTNESS.md)",
    )
    p.add_argument(
        "--health", default=None, choices=("default", "strict", "off"),
        help="guard-rail policy for every job ('strict' disables "
        "degradation chains)",
    )
    p.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="end-to-end budget per job (remaining budget ships into "
        "worker processes); overruns exit 1 with a structured "
        "DeadlineExceeded",
    )
    p.set_defaults(fn=_cmd_batch)

    p = sub.add_parser("compare", parents=[common], help="run all evaluated schemes on one graph")
    p.add_argument("--graph", required=True)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("suite", parents=[common], help="print Table I for the generated suite")
    p.set_defaults(fn=_cmd_suite)

    p = sub.add_parser("generate", parents=[common], help="generate a suite graph and save .npz")
    p.add_argument("--graph", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("sweep", parents=[common], help="block-size sweep (Fig. 8)")
    p.add_argument("--graph", required=True)
    p.add_argument("--method", default="data-base", type=_method_arg, metavar="METHOD")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "verify", parents=[common],
        help="check a saved coloring (.npz from save_result) against a graph",
    )
    p.add_argument("--graph", required=True)
    p.add_argument("--colors", required=True, help=".npz written by save_result")
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "profile", parents=[common],
        help="nvprof-style per-kernel profile of one scheme (Fig. 3 data)",
    )
    p.add_argument("--graph", required=True)
    p.add_argument("--method", default="data-ldg", type=_method_arg, metavar="METHOD")
    p.add_argument("--top", type=int, default=None, help="show only the N slowest kernels")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "serve", parents=[common],
        help="drive the async coloring service: concurrent duplicate "
        "requests, coalescing/admission counters, optional session edits",
    )
    p.add_argument("--graph", required=True)
    p.add_argument("--method", default="data-ldg", type=_method_arg, metavar="METHOD")
    p.add_argument(
        "--requests", type=int, default=50, metavar="N",
        help="concurrent duplicate requests to storm the service with",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="engine worker-pool size for batches (default serial)",
    )
    p.add_argument(
        "--store", default=None, choices=("heap", "shm", "mmap"),
        help="graph arena workers attach to (service-owned, closed on exit)",
    )
    p.add_argument(
        "--cache", default=None, metavar="DIR|memory",
        help="shared result cache (default: fresh in-memory LRU)",
    )
    p.add_argument("--max-queue", type=int, default=64, metavar="N")
    p.add_argument("--batch-max", type=int, default=8, metavar="N")
    p.add_argument(
        "--session-edits", type=int, default=0, metavar="N",
        help="also run a dynamic session applying N random edits",
    )
    p.add_argument(
        "--max-drift", type=int, default=None, metavar="K",
        help="session compaction threshold (colors above baseline)",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the service-level Chrome trace here",
    )
    p.add_argument(
        "--check", action="store_true",
        help="exit nonzero unless coalescing collapsed the storm to one "
        "engine run with byte-identical colors, an expired-deadline "
        "probe failed structurally (DeadlineExceeded at admission, "
        "breaker still closed), and the service shut down cleanly",
    )
    p.set_defaults(fn=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
