"""Device and launch configuration for the simulated GPGPU.

The presets model the paper's testbed: an NVIDIA Tesla K20c (Kepler GK110)
for the device and an Intel Xeon E5-2670 for the sequential baseline.  All
microarchitectural constants cite public Kepler documentation (GK110
whitepaper, CUDA C Programming Guide 7.0) or the paper itself — e.g. the
~30-cycle read-only-cache and ~300-cycle DRAM latencies are Section III.C's
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceConfig", "LaunchConfig", "CPUConfig", "KEPLER_K20C", "XEON_E5_2670"]


@dataclass(frozen=True)
class DeviceConfig:
    """Microarchitectural parameters of the simulated GPU."""

    name: str = "K20c"
    # --- SM organization (GK110: 13 SMX on K20c) ---
    num_sms: int = 13
    warp_size: int = 32
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    max_threads_per_block: int = 1024
    warp_schedulers_per_sm: int = 4  # each dual-issue on Kepler
    issue_slots_per_cycle: int = 8  # 4 schedulers x 2 dispatch units
    registers_per_sm: int = 65536
    shared_mem_per_sm: int = 49152  # bytes usable alongside 16KB L1 split
    # --- memory hierarchy ---
    cache_line_bytes: int = 128
    readonly_cache_bytes: int = 48 * 1024  # per-SM read-only (texture) cache
    readonly_cache_ways: int = 4
    l2_cache_bytes: int = 1280 * 1024  # 1.25 MB shared L2 on K20c
    l2_cache_ways: int = 16
    # Latencies in core cycles.  The paper quotes ~30 cycles for the
    # read-only cache and ~300 for DRAM (Section III.C); microbenchmark
    # literature for Kepler puts the *pipeline* latency of a texture-path
    # hit near 110 cycles, which is what a dependent instruction actually
    # waits — we use the measured figure so the __ldg() gain matches the
    # paper's modest observed speedups rather than the datasheet ratio.
    readonly_hit_latency: int = 110
    l2_hit_latency: int = 220
    dram_latency: int = 320
    # throughputs
    clock_ghz: float = 0.706
    dram_bandwidth_gbs: float = 208.0  # K20c peak GDDR5 bandwidth
    peak_gips: float = 1173.0  # peak integer/simple-op throughput (Ginstr/s)
    # maximum memory-level parallelism a warp sustains (outstanding misses)
    max_outstanding_per_warp: int = 6
    # --- atomic operation units: one per memory partition (5 x 64-bit on K20c)
    num_memory_partitions: int = 5
    atomic_op_cycles: int = 28  # service time per atomic at the partition
    # --- host link and launch overheads ---
    pcie_bandwidth_gbs: float = 6.0
    pcie_latency_us: float = 10.0
    kernel_launch_overhead_us: float = 5.0

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.num_sms <= 0:
            raise ValueError("warp_size and num_sms must be positive")
        if self.cache_line_bytes & (self.cache_line_bytes - 1):
            raise ValueError("cache_line_bytes must be a power of two")
        if self.readonly_cache_bytes % self.cache_line_bytes:
            raise ValueError("read-only cache size must be a whole number of lines")
        if self.l2_cache_bytes % self.cache_line_bytes:
            raise ValueError("L2 size must be a whole number of lines")

    # Derived quantities -------------------------------------------------
    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def readonly_cache_lines(self) -> int:
        return self.readonly_cache_bytes // self.cache_line_bytes

    @property
    def l2_cache_lines(self) -> int:
        return self.l2_cache_bytes // self.cache_line_bytes

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth_gbs / self.clock_ghz

    @property
    def cycles_per_us(self) -> float:
        return self.clock_ghz * 1e3

    def with_(self, **kwargs) -> "DeviceConfig":
        """Return a modified copy (ablation convenience)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class LaunchConfig:
    """Per-kernel-launch execution configuration.

    The paper sweeps ``block_size`` in Fig. 8 and defaults to 128; registers
    and shared memory feed the occupancy calculation.  The register default
    matches what nvcc reports for greedy-coloring kernels of this shape
    (CSR cursors, forbidden-color state, loop bookkeeping): ~44 registers —
    which is what makes >=512-thread blocks oversaturate the register file
    and lose occupancy, the paper's stated reason large blocks lose.
    """

    block_size: int = 128
    regs_per_thread: int = 44
    shared_mem_per_block: int = 0

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.regs_per_thread < 0 or self.shared_mem_per_block < 0:
            raise ValueError("resource usage cannot be negative")

    def grid_size(self, num_items: int) -> int:
        """Blocks needed to cover ``num_items`` with one thread each."""
        return max(1, -(-num_items // self.block_size))


@dataclass(frozen=True)
class CPUConfig:
    """Simplified out-of-order CPU model for the sequential baseline.

    One core of a Xeon E5-2670 (Sandy Bridge, 2.6 GHz).  The model charges
    instruction-issue cycles (superscalar width ``ipc``) plus cache-modelled
    memory latency divided by the sustainable memory-level parallelism
    (``mlp``) — the same max(compute, latency/overlap) structure as the GPU
    model, so cross-device speedups compare like with like.
    """

    name: str = "Xeon-E5-2670"
    clock_ghz: float = 2.6
    # Sustained IPC on pointer-chasing graph kernels (greedy's colorMask
    # probe is a serial dependent chain): ~1.8 on Sandy Bridge, well below
    # the 4-wide issue peak.
    ipc: float = 1.8
    mlp: float = 6.0  # outstanding misses an OoO core sustains (LFB-limited)
    l2_cache_bytes: int = 256 * 1024
    llc_cache_bytes: int = 20 * 1024 * 1024
    cache_line_bytes: int = 64
    l2_hit_latency: int = 12
    llc_hit_latency: int = 32
    dram_latency: int = 200

    @property
    def l2_cache_lines(self) -> int:
        return self.l2_cache_bytes // self.cache_line_bytes

    @property
    def llc_cache_lines(self) -> int:
        return self.llc_cache_bytes // self.cache_line_bytes

    @property
    def cycles_per_us(self) -> float:
        return self.clock_ghz * 1e3


#: The paper's GPU testbed.
KEPLER_K20C = DeviceConfig()

#: A larger Kepler part (K40: 15 SMX, 288 GB/s, higher boost clock) for
#: device-scaling studies — same architecture, more resources.
KEPLER_K40 = DeviceConfig(
    name="K40",
    num_sms=15,
    clock_ghz=0.745,
    dram_bandwidth_gbs=288.0,
    l2_cache_bytes=1536 * 1024,
)

#: A small Kepler part (GTX 650 Ti-class: 4 SMX, 86 GB/s) — the other end
#: of the scaling axis.
KEPLER_SMALL = DeviceConfig(
    name="GK106-small",
    num_sms=4,
    clock_ghz=0.928,
    dram_bandwidth_gbs=86.4,
    l2_cache_bytes=256 * 1024,
)

#: The paper's sequential-baseline CPU.
XEON_E5_2670 = CPUConfig()
