"""Profiler-style reporting over kernel profiles (nvprof for the simulator).

The timing model produces one :class:`~repro.gpusim.timing.KernelProfile`
per launch; this module aggregates and renders them the way the paper's
Fig. 3 analysis consumed nvprof output: per-kernel tables, whole-run
summaries, and stall-reason aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.table import format_table
from .config import DeviceConfig
from .device import Device, Timeline
from .timing import KernelProfile

__all__ = [
    "RunSummary",
    "EMPTY_RUN_SUMMARY",
    "summarize_profiles",
    "profile_report",
    "timeline_report",
]


@dataclass(frozen=True)
class RunSummary:
    """Aggregate statistics over a set of kernel launches."""

    num_launches: int
    total_time_us: float
    total_transactions: int
    total_dram_bytes: int
    avg_occupancy: float
    avg_simd_efficiency: float
    avg_compute_utilization: float
    avg_bandwidth_utilization: float
    stalls: dict[str, float]  # time-weighted stall shares
    bound_histogram: dict[str, int]

    @property
    def dominant_bound(self) -> str:
        if not self.bound_histogram:
            return "none"
        return max(self.bound_histogram, key=self.bound_histogram.get)


#: What :func:`summarize_profiles` returns for a launch-free run (an empty
#: graph, a scheme that converged before launching) — explicit zeros so
#: zero-launch runs report cleanly instead of raising.
EMPTY_RUN_SUMMARY = RunSummary(
    num_launches=0,
    total_time_us=0.0,
    total_transactions=0,
    total_dram_bytes=0,
    avg_occupancy=0.0,
    avg_simd_efficiency=0.0,
    avg_compute_utilization=0.0,
    avg_bandwidth_utilization=0.0,
    stalls={},
    bound_histogram={},
)


def summarize_profiles(profiles: list[KernelProfile]) -> RunSummary:
    """Time-weighted aggregation of per-launch profiles.

    An empty profile list yields :data:`EMPTY_RUN_SUMMARY` (all zeros,
    ``dominant_bound == "none"``) rather than raising.
    """
    if not profiles:
        return EMPTY_RUN_SUMMARY
    weights = np.array([p.time_us for p in profiles], dtype=np.float64)
    weights = weights / weights.sum() if weights.sum() else weights
    stall_keys = profiles[0].stalls.keys()
    stalls = {
        k: float(sum(w * p.stalls[k] for w, p in zip(weights, profiles)))
        for k in stall_keys
    }
    bounds: dict[str, int] = {}
    for p in profiles:
        bounds[p.bound] = bounds.get(p.bound, 0) + 1
    return RunSummary(
        num_launches=len(profiles),
        total_time_us=float(sum(p.time_us for p in profiles)),
        total_transactions=int(sum(p.memory.transactions for p in profiles)),
        total_dram_bytes=int(sum(p.memory.dram_bytes for p in profiles)),
        avg_occupancy=float(sum(w * p.occupancy for w, p in zip(weights, profiles))),
        avg_simd_efficiency=float(
            sum(w * p.simd_efficiency for w, p in zip(weights, profiles))
        ),
        avg_compute_utilization=float(
            sum(w * p.compute_utilization for w, p in zip(weights, profiles))
        ),
        avg_bandwidth_utilization=float(
            sum(w * p.bandwidth_utilization for w, p in zip(weights, profiles))
        ),
        stalls=stalls,
        bound_histogram=bounds,
    )


def profile_report(profiles: list[KernelProfile], *, top: int | None = None) -> str:
    """Render an nvprof-like per-kernel table plus the aggregate summary."""
    if not profiles:
        return "(no kernel launches)"
    ordered = sorted(profiles, key=lambda p: -p.time_us)
    if top is not None:
        ordered = ordered[:top]
    rows = [
        [
            p.name,
            round(p.time_us, 1),
            p.bound,
            f"{p.occupancy:.0%}",
            f"{p.memory.l2_hit_rate:.0%}",
            f"{p.memory.ro_hit_rate:.0%}",
            round(p.memory.dram_bytes / 1e6, 2),
            f"{p.stalls['memory_dependency']:.0%}",
        ]
        for p in ordered
    ]
    table = format_table(
        ["kernel", "us", "bound", "occup", "L2 hit", "RO hit", "DRAM MB",
         "mem-dep"],
        rows,
    )
    s = summarize_profiles(profiles)
    summary = (
        f"\n{s.num_launches} launches, {s.total_time_us:.1f} us total, "
        f"{s.total_dram_bytes / 1e6:.1f} MB DRAM traffic\n"
        f"time-weighted: occupancy {s.avg_occupancy:.0%}, "
        f"SIMD efficiency {s.avg_simd_efficiency:.0%}, "
        f"compute {s.avg_compute_utilization:.0%} / "
        f"bandwidth {s.avg_bandwidth_utilization:.0%} of peak\n"
        f"dominant bound: {s.dominant_bound}; "
        f"top stall: {max(s.stalls, key=s.stalls.get)} "
        f"({s.stalls[max(s.stalls, key=s.stalls.get)]:.0%})"
    )
    return table + summary


def timeline_report(device: Device) -> str:
    """Whole-device accounting: kernels, transfers, launch overheads."""
    tl: Timeline = device.timeline
    cfg: DeviceConfig = device.config
    kernel_us = tl.kernel_time_us()
    xfer_us = tl.transfer_time_us()
    launch_us = tl.launch_overhead_us(cfg)
    total = tl.total_time_us(cfg)
    rows = [
        ["kernel execution", round(kernel_us, 1), f"{kernel_us / total:.0%}" if total else "-"],
        ["PCIe transfers", round(xfer_us, 1), f"{xfer_us / total:.0%}" if total else "-"],
        ["launch overheads", round(launch_us, 1), f"{launch_us / total:.0%}" if total else "-"],
        ["total", round(total, 1), "100%"],
    ]
    return format_table(
        ["component", "us", "share"], rows, title=f"device timeline ({cfg.name}):"
    )
