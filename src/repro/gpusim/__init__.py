"""Simulated Kepler-class GPGPU: SIMT traces, cache hierarchy, timing model.

This package is the stand-in for the paper's NVIDIA K20c + CUDA 7.0
testbed (see DESIGN.md).  Kernels run functionally in NumPy and are priced
by a bottleneck/latency timing model driven by their real memory traces.
"""

from .cache import CacheConfig, SetAssociativeCache, analytic_hits, reuse_distance_hits
from .config import (CPUConfig, DeviceConfig, KEPLER_K20C, KEPLER_K40,
                     KEPLER_SMALL, LaunchConfig, XEON_E5_2670)
from .device import Device, DeviceArray, Timeline, TransferEvent
from .occupancy import Occupancy, compute_occupancy
from .profiler import RunSummary, profile_report, summarize_profiles, timeline_report
from .timing import KernelProfile, MemoryStats, price_kernel
from .trace import AccessKind, ComputeStats, KernelTrace, MemoryTrace, TraceBuilder

__all__ = [
    "AccessKind",
    "CPUConfig",
    "CacheConfig",
    "ComputeStats",
    "Device",
    "DeviceArray",
    "DeviceConfig",
    "KEPLER_K20C",
    "KEPLER_K40",
    "KEPLER_SMALL",
    "KernelProfile",
    "KernelTrace",
    "LaunchConfig",
    "MemoryStats",
    "MemoryTrace",
    "Occupancy",
    "RunSummary",
    "SetAssociativeCache",
    "Timeline",
    "TraceBuilder",
    "TransferEvent",
    "XEON_E5_2670",
    "analytic_hits",
    "compute_occupancy",
    "price_kernel",
    "profile_report",
    "summarize_profiles",
    "timeline_report",
    "reuse_distance_hits",
]
