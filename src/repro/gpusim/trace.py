"""Kernel execution traces: SIMT instruction and memory-transaction streams.

A simulated kernel does two things: it computes its *functional* result with
vectorized NumPy, and it records *what the hardware would have done* — one
record per warp-level memory transaction plus dynamic instruction counts —
into a :class:`KernelTrace` via :class:`TraceBuilder`.  The timing model
(:mod:`repro.gpusim.timing`) then prices the trace.

The builder performs the two SIMT-specific transformations:

* **Lockstep execution**: threads in a warp executing a data-dependent loop
  (the ``for w in adj(v)`` loop of every coloring kernel) advance together;
  the warp issues ``max`` over its threads' trip counts iterations, with
  inactive lanes masked off.  This is where intra-warp load imbalance comes
  from.
* **Coalescing**: the up-to-32 per-thread addresses of one warp instruction
  collapse into one transaction per distinct 128-byte line touched
  (Kepler's global-memory transaction granularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import DeviceConfig, LaunchConfig

__all__ = ["AccessKind", "MemoryTrace", "ComputeStats", "KernelTrace", "TraceBuilder"]


class AccessKind:
    """Transaction type codes stored in :attr:`MemoryTrace.kind`."""

    LOAD = 0  # normal global load (__ld): L2 -> DRAM path
    LDG = 1  # read-only cache load (__ldg): RO cache -> L2 -> DRAM path
    STORE = 2  # global store (write-back through L2)
    ATOMIC = 3  # read-modify-write at the L2 atomic units

    NAMES = {LOAD: "load", LDG: "ldg", STORE: "store", ATOMIC: "atomic"}


@dataclass
class MemoryTrace:
    """Columnar stream of warp-level memory transactions.

    All arrays share one length.  ``wave``/``step``/``warp`` approximate
    issue order: blocks launch in occupancy-sized waves, and within a wave
    resident warps interleave step by step.
    """

    kind: np.ndarray  # uint8 AccessKind codes
    line_id: np.ndarray  # int64 global cache-line ids
    sm_id: np.ndarray  # int32 SM executing the issuing block
    warp_id: np.ndarray  # int64 device-wide warp index
    wave: np.ndarray  # int32 launch wave of the issuing block
    step: np.ndarray  # int64 issue-order key within the wave

    def __len__(self) -> int:
        return self.kind.size

    def issue_order(self) -> np.ndarray:
        """Indices sorting transactions into approximate service order.

        Warp-major within a wave: a warp's own accesses stay consecutive.
        Lockstep (step-major) interleaving would be wrong — resident warps
        stall independently, so a warp's step ``k+1`` request reaches L2 a
        few hundred cycles after its step ``k``, during which the device
        services only ~10^3 other transactions, far fewer than a full
        wave-wide step.  Warp-major keeps each warp's short-range reuse
        (its own CSR row) adjacent while still interleaving warps at the
        wave granularity the resident set dictates.
        """
        if len(self) == 0:
            return np.empty(0, dtype=np.int64)
        # Single packed-key argsort is ~3x faster than a 3-array lexsort.
        max_step = int(self.step.max()) + 1
        max_warp = int(self.warp_id.max()) + 1
        max_wave = int(self.wave.max()) + 1
        if max_wave * max_warp * max_step < (1 << 62):
            key = (
                self.wave.astype(np.int64) * max_warp + self.warp_id
            ) * max_step + self.step
            return np.argsort(key, kind="stable")
        return np.lexsort((self.step, self.warp_id, self.wave))  # pragma: no cover

    def select(self, mask: np.ndarray) -> "MemoryTrace":
        return MemoryTrace(
            self.kind[mask], self.line_id[mask], self.sm_id[mask],
            self.warp_id[mask], self.wave[mask], self.step[mask],
        )

    @staticmethod
    def concatenate(traces: list["MemoryTrace"]) -> "MemoryTrace":
        if not traces:
            return MemoryTrace(*(np.empty(0, dtype=d) for d in
                                 (np.uint8, np.int64, np.int32, np.int64, np.int32, np.int64)))
        return MemoryTrace(
            np.concatenate([t.kind for t in traces]),
            np.concatenate([t.line_id for t in traces]),
            np.concatenate([t.sm_id for t in traces]),
            np.concatenate([t.warp_id for t in traces]),
            np.concatenate([t.wave for t in traces]),
            np.concatenate([t.step for t in traces]),
        )


@dataclass
class ComputeStats:
    """Dynamic instruction accounting for one kernel launch."""

    warp_instructions: int = 0  # SIMT issue slots consumed (warp granularity)
    thread_instructions: int = 0  # useful per-lane work (work-efficiency metric)
    barriers: int = 0  # __syncthreads() executions (per block)
    num_threads: int = 0  # launched threads (grid coverage)
    active_threads: int = 0  # threads that did real work

    @property
    def simd_efficiency(self) -> float:
        """Average fraction of lanes doing useful work per issued instruction."""
        cap = self.warp_instructions * 32
        return self.thread_instructions / cap if cap else 0.0


@dataclass
class KernelTrace:
    """Everything the timing model needs about one kernel launch."""

    name: str
    memory: MemoryTrace
    compute: ComputeStats
    num_blocks: int
    launch: LaunchConfig
    atomic_addresses: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


class TraceBuilder:
    """Accumulates SIMT memory/instruction events for one kernel launch.

    Parameters
    ----------
    device, launch:
        Hardware and launch configuration (thread->warp->block->SM mapping).
    num_threads:
        Size of the launch domain.  Thread ``t`` of the grid handles item
        ``t`` (topology-driven kernels pass ``num_vertices``; data-driven
        kernels pass the worklist length).
    name:
        Kernel name for profiling output.
    """

    _LINE_SHIFT_CACHE: dict[int, int] = {}

    def __init__(
        self,
        device: DeviceConfig,
        launch: LaunchConfig,
        num_threads: int,
        name: str = "kernel",
    ) -> None:
        self.device = device
        self.launch = launch
        self.num_threads = int(num_threads)
        self.name = name
        self.num_blocks = launch.grid_size(self.num_threads)
        self._line_shift = int(device.cache_line_bytes).bit_length() - 1
        self._streams: list[MemoryTrace] = []
        self._atomic_addrs: list[np.ndarray] = []
        self._compute = ComputeStats(num_threads=self.num_threads)
        self._seq = 0  # per-call sequence distinguishing issue slots
        # Resident blocks per SM for wave computation is filled by Device at
        # launch time via set_residency; default assumes full residency.
        self._blocks_per_wave = device.num_sms

    def set_residency(self, blocks_per_sm: int) -> None:
        """Record occupancy so wave boundaries match resident block count."""
        self._blocks_per_wave = max(1, blocks_per_sm) * self.device.num_sms

    # ------------------------------------------------------------------
    # Thread geometry helpers
    # ------------------------------------------------------------------
    def _geometry(self, thread_ids: np.ndarray):
        block = thread_ids // self.launch.block_size
        warp = thread_ids // self.device.warp_size
        sm = (block % self.device.num_sms).astype(np.int32)
        wave = (block // self._blocks_per_wave).astype(np.int32)
        return block, warp, sm, wave

    # ------------------------------------------------------------------
    # Memory events
    # ------------------------------------------------------------------
    def access(
        self,
        kind: int,
        thread_ids: np.ndarray,
        addresses: np.ndarray,
        *,
        step: np.ndarray | int = 0,
    ) -> None:
        """Record one memory instruction per (thread, step) pair.

        ``thread_ids``, ``addresses`` (byte addresses) and ``step`` (loop
        trip index, scalar or array) are parallel arrays; the builder
        coalesces same-(warp, step) accesses into line transactions.
        """
        thread_ids = np.asarray(thread_ids, dtype=np.int64)
        addresses = np.asarray(addresses, dtype=np.int64)
        if thread_ids.shape != addresses.shape:
            raise ValueError("thread_ids and addresses must be parallel arrays")
        if thread_ids.size == 0:
            self._seq += 1
            return
        if np.any(thread_ids >= self.num_threads) or np.any(thread_ids < 0):
            raise ValueError("thread id outside launch domain")
        step_arr = np.broadcast_to(np.asarray(step, dtype=np.int64), thread_ids.shape)

        _, warp, sm, wave = self._geometry(thread_ids)
        line = addresses >> self._line_shift

        # Coalesce: one transaction per unique (warp, step, line), found by
        # a single packed-key unique (faster than a 3-array lexsort; the
        # factors fit int64 at any simulated footprint).
        max_line = int(line.max()) + 1
        max_step = int(step_arr.max()) + 1
        max_warp = int(warp.max()) + 1
        if max_warp * max_step * max_line < (1 << 62):
            key = (warp * max_step + step_arr) * max_line + line
            _, sel = np.unique(key, return_index=True)
        else:  # pragma: no cover - would need a >4 EB address space
            order = np.lexsort((line, step_arr, warp))
            w_s, s_s, l_s = warp[order], step_arr[order], line[order]
            first = np.empty(order.size, dtype=bool)
            first[0] = True
            first[1:] = (
                (w_s[1:] != w_s[:-1]) | (s_s[1:] != s_s[:-1]) | (l_s[1:] != l_s[:-1])
            )
            sel = order[first]

        seq_step = step_arr[sel] * 1024 + (self._seq % 1024)
        self._streams.append(
            MemoryTrace(
                kind=np.full(sel.size, kind, dtype=np.uint8),
                line_id=line[sel],
                sm_id=sm[sel],
                warp_id=warp[sel],
                wave=wave[sel],
                step=seq_step,
            )
        )
        if kind == AccessKind.ATOMIC:
            self._atomic_addrs.append(addresses)
        self._seq += 1

    def load(self, thread_ids, addresses, *, ldg: bool = False, step=0) -> None:
        """Global load; ``ldg=True`` routes through the read-only cache."""
        self.access(AccessKind.LDG if ldg else AccessKind.LOAD, thread_ids, addresses, step=step)

    def store(self, thread_ids, addresses, *, step=0) -> None:
        self.access(AccessKind.STORE, thread_ids, addresses, step=step)

    def atomic(self, thread_ids, addresses, *, step=0) -> None:
        """Atomic read-modify-write (contention priced per address)."""
        self.access(AccessKind.ATOMIC, thread_ids, addresses, step=step)

    # ------------------------------------------------------------------
    # Instruction accounting
    # ------------------------------------------------------------------
    def instructions(
        self,
        thread_ids: np.ndarray,
        per_thread: np.ndarray | int,
        *,
        note: str | None = None,
    ) -> None:
        """Charge arithmetic/control instructions to the issuing warps.

        ``per_thread`` may be scalar (uniform cost) or an array parallel to
        ``thread_ids`` (data-dependent trip counts).  SIMT lockstep means a
        warp issues ``max`` over its lanes; useful work is the per-lane sum.
        """
        thread_ids = np.asarray(thread_ids, dtype=np.int64)
        if thread_ids.size == 0:
            return
        counts = np.broadcast_to(
            np.asarray(per_thread, dtype=np.int64), thread_ids.shape
        )
        warp = thread_ids // self.device.warp_size
        nwarps = int(warp.max()) + 1
        warp_max = np.zeros(nwarps, dtype=np.int64)
        np.maximum.at(warp_max, warp, counts)
        self._compute.warp_instructions += int(warp_max.sum())
        self._compute.thread_instructions += int(counts.sum())

    def activate(self, num_active: int) -> None:
        """Record how many launched threads had real work this launch."""
        self._compute.active_threads += int(num_active)

    def barrier(self, times: int = 1) -> None:
        """Record ``__syncthreads()`` executions (one per block each)."""
        self._compute.barriers += int(times) * self.num_blocks

    def uniform_overhead(self, per_thread_instr: int) -> None:
        """Fixed prologue/epilogue cost every launched thread pays."""
        warps = -(-self.num_threads // self.device.warp_size)
        self._compute.warp_instructions += warps * int(per_thread_instr)
        self._compute.thread_instructions += self.num_threads * int(per_thread_instr)

    # ------------------------------------------------------------------
    def build(self) -> KernelTrace:
        """Finalize into an immutable :class:`KernelTrace`."""
        atomic_addrs = (
            np.concatenate(self._atomic_addrs)
            if self._atomic_addrs
            else np.empty(0, dtype=np.int64)
        )
        return KernelTrace(
            name=self.name,
            memory=MemoryTrace.concatenate(self._streams),
            compute=self._compute,
            num_blocks=self.num_blocks,
            launch=self.launch,
            atomic_addresses=atomic_addrs,
        )
