"""Kernel execution traces: SIMT instruction and memory-transaction streams.

A simulated kernel does two things: it computes its *functional* result with
vectorized NumPy, and it records *what the hardware would have done* — one
record per warp-level memory transaction plus dynamic instruction counts —
into a :class:`KernelTrace` via :class:`TraceBuilder`.  The timing model
(:mod:`repro.gpusim.timing`) then prices the trace.

The builder performs the two SIMT-specific transformations:

* **Lockstep execution**: threads in a warp executing a data-dependent loop
  (the ``for w in adj(v)`` loop of every coloring kernel) advance together;
  the warp issues ``max`` over its threads' trip counts iterations, with
  inactive lanes masked off.  This is where intra-warp load imbalance comes
  from.
* **Coalescing**: the up-to-32 per-thread addresses of one warp instruction
  collapse into one transaction per distinct 128-byte line touched
  (Kepler's global-memory transaction granularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compiledsim import dispatch as _compiled
from .config import DeviceConfig, LaunchConfig

__all__ = ["AccessKind", "MemoryTrace", "ComputeStats", "KernelTrace", "TraceBuilder"]


def _pow2_shift(value: int) -> int | None:
    """Shift amount when ``value`` is a power of two, else ``None``."""
    value = int(value)
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


def _first_occurrences(key: np.ndarray) -> np.ndarray:
    """First-occurrence indices of each distinct key, in key-sorted order.

    Equivalent to ``np.unique(key, return_index=True)[1]``, with an
    adjacent-run dedup pre-pass: consecutive equal keys (the common shape
    for vertex-indexed streams, where 32 lanes of a warp share a cache
    line at the same step) collapse before the sort sees them.  Exact
    because the first element of a key's earliest run *is* its global
    first occurrence, and run heads preserve array order.
    """
    if key.size == 1:
        return np.zeros(1, dtype=np.intp)
    compiled = _compiled.first_occurrences(key)
    if compiled is not None:
        # Compiled engine: hash first-touch scan + radix sort of the
        # unique subset — same key-sorted first indices, O(n) not
        # O(n log n).
        return compiled
    heads = np.empty(key.size, dtype=bool)
    heads[0] = True
    np.not_equal(key[1:], key[:-1], out=heads[1:])
    # Count before extracting: when nothing collapses (scattered streams),
    # the popcount pass is all we pay — no index array materialized.
    if int(np.count_nonzero(heads)) < key.size:
        kept = np.flatnonzero(heads)
        deduped = key[kept]
    else:
        deduped = key
        kept = None  # nothing collapsed; positions are already indices
    # Hand-rolled np.unique(deduped, return_index=True)[1]: same stable
    # argsort + run-head mask, minus the flatten copy and the unique-values
    # array np.unique builds only to discard.
    perm = deduped.argsort(kind="stable")
    aux = deduped[perm]
    first = np.empty(aux.size, dtype=bool)
    first[0] = True
    np.not_equal(aux[1:], aux[:-1], out=first[1:])
    sel = perm[first]
    return sel if kept is None else kept[sel]


class AccessKind:
    """Transaction type codes stored in :attr:`MemoryTrace.kind`."""

    LOAD = 0  # normal global load (__ld): L2 -> DRAM path
    LDG = 1  # read-only cache load (__ldg): RO cache -> L2 -> DRAM path
    STORE = 2  # global store (write-back through L2)
    ATOMIC = 3  # read-modify-write at the L2 atomic units

    NAMES = {LOAD: "load", LDG: "ldg", STORE: "store", ATOMIC: "atomic"}


@dataclass
class MemoryTrace:
    """Columnar stream of warp-level memory transactions.

    All arrays share one length.  ``wave``/``step``/``warp`` approximate
    issue order: blocks launch in occupancy-sized waves, and within a wave
    resident warps interleave step by step.
    """

    kind: np.ndarray  # uint8 AccessKind codes
    line_id: np.ndarray  # global cache-line ids (int32 when they fit)
    sm_id: np.ndarray  # int32 SM executing the issuing block
    warp_id: np.ndarray  # device-wide warp index (int32 when it fits)
    wave: np.ndarray  # int32 launch wave of the issuing block
    step: np.ndarray  # issue-order key within the wave (int32 when it fits)
    #: Segment boundaries (int64 offsets, len nseg+1) when the columns
    #: were arena-emitted one key-sorted segment per access call; lets
    #: issue_order() use a k-way merge instead of a sort.  None when the
    #: provenance is unknown (legacy concatenation, select()).
    seg_offsets: np.ndarray | None = None

    def __len__(self) -> int:
        return self.kind.size

    def issue_order(self) -> np.ndarray:
        """Indices sorting transactions into approximate service order.

        Warp-major within a wave: a warp's own accesses stay consecutive.
        Lockstep (step-major) interleaving would be wrong — resident warps
        stall independently, so a warp's step ``k+1`` request reaches L2 a
        few hundred cycles after its step ``k``, during which the device
        services only ~10^3 other transactions, far fewer than a full
        wave-wide step.  Warp-major keeps each warp's short-range reuse
        (its own CSR row) adjacent while still interleaving warps at the
        wave granularity the resident set dictates.
        """
        if len(self) == 0:
            return np.empty(0, dtype=np.int64)
        # Single packed-key argsort is ~3x faster than a 3-array lexsort.
        max_step = int(self.step.max()) + 1
        max_warp = int(self.warp_id.max()) + 1
        max_wave = int(self.wave.max()) + 1
        if self.seg_offsets is not None:
            # Arena segments are key-sorted with segment-unique keys, so
            # the stable argsort is a k-way merge (verified on the fly;
            # None falls through to the sorts below).
            merged = _compiled.merge_order(
                self.wave, self.warp_id, self.step, self.seg_offsets,
                max_wave, max_warp, max_step,
            )
            if merged is not None:
                return merged
        if max_wave * max_warp * max_step < (1 << 62):
            # Compiled engine: 3-key LSD counting sort — three passes
            # regardless of key width, the identical permutation to the
            # packed-key stable argsort below.
            compiled3 = _compiled.issue_order3(
                self.wave, self.warp_id, self.step,
                max_wave, max_warp, max_step,
            )
            if compiled3 is not None:
                return compiled3
            # Build the key in place: one int64 buffer, no binary-op temps.
            key = np.multiply(self.wave, max_warp, dtype=np.int64)
            key += self.warp_id
            key *= max_step
            key += self.step
            compiled = _compiled.issue_order(key)
            if compiled is not None:
                # Stable LSD radix argsort: the identical permutation
                # (ties broken by position, same as kind='stable').
                return compiled
            return np.argsort(key, kind="stable")
        return np.lexsort((self.step, self.warp_id, self.wave))  # pragma: no cover

    def select(self, mask: np.ndarray) -> "MemoryTrace":
        return MemoryTrace(
            self.kind[mask], self.line_id[mask], self.sm_id[mask],
            self.warp_id[mask], self.wave[mask], self.step[mask],
        )

    @staticmethod
    def concatenate(traces: list["MemoryTrace"]) -> "MemoryTrace":
        if not traces:
            return MemoryTrace(*(np.empty(0, dtype=d) for d in
                                 (np.uint8, np.int64, np.int32, np.int64, np.int32, np.int64)))
        return MemoryTrace(
            np.concatenate([t.kind for t in traces]),
            np.concatenate([t.line_id for t in traces]),
            np.concatenate([t.sm_id for t in traces]),
            np.concatenate([t.warp_id for t in traces]),
            np.concatenate([t.wave for t in traces]),
            np.concatenate([t.step for t in traces]),
        )


@dataclass
class ComputeStats:
    """Dynamic instruction accounting for one kernel launch."""

    warp_instructions: int = 0  # SIMT issue slots consumed (warp granularity)
    thread_instructions: int = 0  # useful per-lane work (work-efficiency metric)
    barriers: int = 0  # __syncthreads() executions (per block)
    num_threads: int = 0  # launched threads (grid coverage)
    active_threads: int = 0  # threads that did real work

    @property
    def simd_efficiency(self) -> float:
        """Average fraction of lanes doing useful work per issued instruction."""
        cap = self.warp_instructions * 32
        return self.thread_instructions / cap if cap else 0.0


@dataclass
class KernelTrace:
    """Everything the timing model needs about one kernel launch."""

    name: str
    memory: MemoryTrace
    compute: ComputeStats
    num_blocks: int
    launch: LaunchConfig
    atomic_addresses: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


class TraceBuilder:
    """Accumulates SIMT memory/instruction events for one kernel launch.

    Parameters
    ----------
    device, launch:
        Hardware and launch configuration (thread->warp->block->SM mapping).
    num_threads:
        Size of the launch domain.  Thread ``t`` of the grid handles item
        ``t`` (topology-driven kernels pass ``num_vertices``; data-driven
        kernels pass the worklist length).
    name:
        Kernel name for profiling output.
    """

    _LINE_SHIFT_CACHE: dict[int, int] = {}

    def __init__(
        self,
        device: DeviceConfig,
        launch: LaunchConfig,
        num_threads: int,
        name: str = "kernel",
    ) -> None:
        self.device = device
        self.launch = launch
        self.num_threads = int(num_threads)
        self.name = name
        self.num_blocks = launch.grid_size(self.num_threads)
        self._line_shift = int(device.cache_line_bytes).bit_length() - 1
        #: Chronological append log: ("a", start, end) spans of the arena
        #: or ("s", MemoryTrace) legacy streams.  All-arena builds skip
        #: the final concatenate entirely.
        self._chunks: list[tuple] = []
        #: Arena columns (kind u8, line i32, sm i32, warp i32, wave i32,
        #: step i32), grown amortized; compiled emit appends here.
        self._arena: tuple[np.ndarray, ...] | None = None
        self._arena_len = 0
        self._seg_ends: list[int] = []
        self._atomic_addrs: list[np.ndarray] = []
        self._compute = ComputeStats(num_threads=self.num_threads)
        self._seq = 0  # per-call sequence distinguishing issue slots
        # Resident blocks per SM for wave computation is filled by Device at
        # launch time via set_residency; default assumes full residency.
        self._blocks_per_wave = device.num_sms
        # Power-of-two divisors become shifts on the hot geometry path.
        self._block_shift = _pow2_shift(launch.block_size)
        self._warp_shift = _pow2_shift(device.warp_size)
        # Kernels replay the same thread-id array across several streams
        # (e.g. the per-edge owner array for the C and colors loads); cache
        # the derived geometry per distinct array object.  Holding the
        # reference keeps identity checks sound for the builder's lifetime.
        self._geom_cache: list[tuple[np.ndarray, tuple]] = []

    _ARENA_DTYPES = (np.uint8, np.int32, np.int32, np.int32, np.int32, np.int32)

    def _arena_reserve(self, n: int) -> tuple[np.ndarray, ...]:
        """Views of ``n`` free arena slots per column (growing as needed)."""
        if self._arena is None:
            # A kernel's later streams rarely dwarf its first (the input
            # is pre-dedup, so n already overshoots the emitted size);
            # 4x the first reservation almost always avoids grow-copies.
            cap = max(4 * n, 1 << 16)
            self._arena = tuple(np.empty(cap, dtype=d) for d in self._ARENA_DTYPES)
        elif self._arena_len + n > self._arena[0].shape[0]:
            # Grow with the same slack policy as the initial sizing: the
            # committed prefix being copied is usually tiny (the first
            # streams of a kernel are small), and 4x the triggering
            # reservation absorbs the rest of the builder's lifetime —
            # without it, a large commit followed by any reservation
            # forces a full-arena copy.
            new_cap = max(4 * n, 2 * (self._arena_len + n))
            old = self._arena
            self._arena = tuple(np.empty(new_cap, dtype=a.dtype) for a in old)
            for src, dst in zip(old, self._arena):
                dst[: self._arena_len] = src[: self._arena_len]
        o = self._arena_len
        return tuple(a[o : o + n] for a in self._arena)

    def _commit_arena(self, m: int) -> None:
        start = self._arena_len
        self._arena_len += m
        self._chunks.append(("a", start, self._arena_len))
        self._seg_ends.append(self._arena_len)

    def set_residency(self, blocks_per_sm: int) -> None:
        """Record occupancy so wave boundaries match resident block count."""
        self._blocks_per_wave = max(1, blocks_per_sm) * self.device.num_sms

    # ------------------------------------------------------------------
    # Thread geometry helpers
    # ------------------------------------------------------------------
    def _geometry(self, thread_ids: np.ndarray):
        for arr, geom in self._geom_cache:
            if arr is thread_ids:
                return geom
        # Launch domains sit far below 2**31, so every geometry column is
        # derived straight into int32 (ufunc dtype=): the shift/divide and
        # the narrowing happen in one pass, with no int64 temporaries.
        if self.num_threads > (1 << 31):  # pragma: no cover - >2G threads
            block = thread_ids // self.launch.block_size
            warp = thread_ids // self.device.warp_size
            sm = (block % self.device.num_sms).astype(np.int32)
            wave = (block // self._blocks_per_wave).astype(np.int32)
            geom = (block, warp, sm, wave)
            self._geom_cache.append((thread_ids, geom))
            return geom
        if self._block_shift is not None:
            block = np.right_shift(thread_ids, self._block_shift, dtype=np.int32)
        else:
            block = np.floor_divide(
                thread_ids, self.launch.block_size, dtype=np.int32
            )
        if self._warp_shift is not None:
            warp = np.right_shift(thread_ids, self._warp_shift, dtype=np.int32)
        else:
            warp = np.floor_divide(thread_ids, self.device.warp_size, dtype=np.int32)
        sm = np.mod(block, self.device.num_sms, dtype=np.int32)
        bpw_shift = _pow2_shift(self._blocks_per_wave)
        if bpw_shift is not None:
            wave = np.right_shift(block, bpw_shift, dtype=np.int32)
        else:
            wave = np.floor_divide(block, self._blocks_per_wave, dtype=np.int32)
        geom = (block, warp, sm, wave)
        self._geom_cache.append((thread_ids, geom))
        return geom

    # ------------------------------------------------------------------
    # Memory events
    # ------------------------------------------------------------------
    def access(
        self,
        kind: int,
        thread_ids: np.ndarray,
        addresses: np.ndarray,
        *,
        step: np.ndarray | int = 0,
        memo: dict | None = None,
    ) -> None:
        """Record one memory instruction per (thread, step) pair.

        ``thread_ids``, ``addresses`` (byte addresses) and ``step`` (loop
        trip index, scalar or array) are parallel arrays; the builder
        coalesces same-(warp, step) accesses into line transactions.

        ``memo`` (optional, a dict the caller scopes — e.g. per round or
        per expansion) caches the coalesced stream keyed by the *identity*
        of the inputs plus the launch geometry: two kernels replaying the
        same (thread_ids, addresses, step) arrays under the same geometry
        produce identical transactions, whatever the access kind, so the
        second replay reuses the first's line/sm/warp/wave columns.  Each
        entry holds references to its keyed arrays, keeping the ids valid
        for the memo's lifetime.  Atomics are never memoized (they feed
        the contention model through a side list).
        """
        mkey = None
        if memo is not None and kind != AccessKind.ATOMIC:
            mkey = (
                id(thread_ids),
                id(addresses),
                id(step) if isinstance(step, np.ndarray) else ("i", int(step)),
                self.launch.block_size,
                self.num_threads,
                self._blocks_per_wave,
                self._line_shift,
            )
            hit = memo.get(mkey)
            if hit is not None:
                self._append_memo_hit(kind, hit)
                self._seq += 1
                return
        raw_threads, raw_addresses = thread_ids, addresses
        thread_ids = np.asarray(thread_ids, dtype=np.int64)
        addresses = np.asarray(addresses, dtype=np.int64)
        if thread_ids.shape != addresses.shape:
            raise ValueError("thread_ids and addresses must be parallel arrays")
        if thread_ids.size == 0:
            self._seq += 1
            return
        # min/max beat two np.any passes: no boolean temporaries.
        if int(thread_ids.min()) < 0 or int(thread_ids.max()) >= self.num_threads:
            raise ValueError("thread id outside launch domain")
        step_arr = np.broadcast_to(np.asarray(step, dtype=np.int64), thread_ids.shape)

        _, warp, sm, wave = self._geometry(thread_ids)
        line = addresses >> self._line_shift

        # Coalesce: one transaction per unique (warp, step, line), found by
        # a single packed-key unique (faster than a 3-array lexsort; the
        # factors fit int64 at any simulated footprint).
        max_line = int(line.max()) + 1
        max_step = int(step_arr.max()) + 1
        max_warp = int(warp.max()) + 1
        if max_warp * max_step * max_line < (1 << 62):
            # Compiled engine, fully fused: dedup + narrowing gathers
            # straight into the arena columns (same emitted order and
            # values as the unfused path below).
            if _compiled.active():
                out = self._arena_reserve(line.shape[0])
                m = _compiled.emit_coalesced(
                    kind, warp, step_arr, line, sm, wave,
                    max_warp, max_step, max_line, self._seq % 1024, out,
                )
                if m is not None:
                    self._commit_arena(m)
                    if kind == AccessKind.ATOMIC:
                        self._atomic_addrs.append(addresses)
                    elif mkey is not None:
                        memo[mkey] = (
                            "A", *(a[:m] for a in out[1:]),
                            self._seq % 1024,
                            (raw_threads, raw_addresses, step),
                        )
                    self._seq += 1
                    return
            # Compiled engine: component-wise radix unique — the same
            # selection the packed-key path below produces.
            sel = _compiled.coalesce_first(
                warp, step_arr, line, max_warp, max_step, max_line
            )
            if sel is None:
                # Build the key in place (geometry's warp array stays
                # intact); dtype= forces the first product into int64
                # straight away.
                key = np.multiply(warp, max_step, dtype=np.int64)
                key += step_arr
                key *= max_line
                key += line
                sel = _first_occurrences(key)
        else:  # pragma: no cover - would need a >4 EB address space
            order = np.lexsort((line, step_arr, warp))
            w_s, s_s, l_s = warp[order], step_arr[order], line[order]
            first = np.empty(order.size, dtype=bool)
            first[0] = True
            first[1:] = (
                (w_s[1:] != w_s[:-1]) | (s_s[1:] != s_s[:-1]) | (l_s[1:] != l_s[:-1])
            )
            sel = order[first]
            # keep the narrowing checks off
            max_warp = max_step = max_line = 1 << 62

        # The step column packs (trip, issue slot); the warp column only
        # feeds the issue-order key, whose math upcasts to int64 — store
        # both narrow when their ranges fit (half the bytes to gather,
        # concatenate and radix-sort downstream).
        warp_sel = warp[sel]  # geometry columns are already int32
        if max_warp <= (1 << 31) and warp_sel.dtype != np.int32:
            warp_sel = warp_sel.astype(np.int32)  # pragma: no cover
        if max_step <= (1 << 21):
            # step*1024 + 1023 < 2**31, so the product is int32-exact.
            step1024 = np.multiply(step_arr[sel], 1024, dtype=np.int32)
        else:
            step1024 = step_arr[sel] * 1024
        line_sel = line[sel]
        if max_line <= (1 << 31):
            line_sel = line_sel.astype(np.int32)
        sm_sel = sm[sel]
        wave_sel = wave[sel]
        self._chunks.append(("s", MemoryTrace(
            kind=np.full(sel.size, kind, dtype=np.uint8),
            line_id=line_sel,
            sm_id=sm_sel,
            warp_id=warp_sel,
            wave=wave_sel,
            step=step1024 + step1024.dtype.type(self._seq % 1024),
        )))
        if kind == AccessKind.ATOMIC:
            self._atomic_addrs.append(addresses)
        elif mkey is not None:
            memo[mkey] = (
                line_sel, sm_sel, warp_sel, wave_sel, step1024,
                (raw_threads, raw_addresses, step),
            )
        self._seq += 1

    def _append_memo_hit(self, kind: int, hit: tuple) -> None:
        """Replay a memoized coalesced stream under a fresh issue slot.

        Entries come in two forms: legacy 6-tuples of narrowed columns
        (step stored *without* its issue-slot offset) and arena-tagged
        8-tuples (``"A"`` + columns with the *originating* offset baked
        in).  Either replays into the arena when the compiled emit path
        is active and the columns are narrow, else into a legacy stream.
        """
        if isinstance(hit[0], str):
            line_sel, sm_sel, warp_sel, wave_sel, step_v = hit[1:6]
            old_off = hit[6]
        else:
            line_sel, sm_sel, warp_sel, wave_sel, step_v = hit[:5]
            old_off = 0
        new_off = self._seq % 1024
        m = line_sel.shape[0]
        if (
            _compiled.active()
            and line_sel.dtype == np.int32
            and warp_sel.dtype == np.int32
            and step_v.dtype == np.int32
        ):
            out = self._arena_reserve(m)
            out[0].fill(kind)
            out[1][:] = line_sel
            out[2][:] = sm_sel
            out[3][:] = warp_sel
            out[4][:] = wave_sel
            np.add(step_v, np.int32(new_off - old_off), out=out[5])
            self._commit_arena(m)
            return
        self._chunks.append(("s", MemoryTrace(
            kind=np.full(m, kind, dtype=np.uint8),
            line_id=line_sel,
            sm_id=sm_sel,
            warp_id=warp_sel,
            wave=wave_sel,
            step=step_v + step_v.dtype.type(new_off - old_off),
        )))

    def load(self, thread_ids, addresses, *, ldg: bool = False, step=0, memo=None) -> None:
        """Global load; ``ldg=True`` routes through the read-only cache."""
        self.access(AccessKind.LDG if ldg else AccessKind.LOAD, thread_ids, addresses,
                    step=step, memo=memo)

    def store(self, thread_ids, addresses, *, step=0, memo=None) -> None:
        self.access(AccessKind.STORE, thread_ids, addresses, step=step, memo=memo)

    def atomic(self, thread_ids, addresses, *, step=0) -> None:
        """Atomic read-modify-write (contention priced per address)."""
        self.access(AccessKind.ATOMIC, thread_ids, addresses, step=step)

    # ------------------------------------------------------------------
    # Instruction accounting
    # ------------------------------------------------------------------
    def instructions(
        self,
        thread_ids: np.ndarray,
        per_thread: np.ndarray | int,
        *,
        note: str | None = None,
    ) -> None:
        """Charge arithmetic/control instructions to the issuing warps.

        ``per_thread`` may be scalar (uniform cost) or an array parallel to
        ``thread_ids`` (data-dependent trip counts).  SIMT lockstep means a
        warp issues ``max`` over its lanes; useful work is the per-lane sum.
        """
        thread_ids = np.asarray(thread_ids, dtype=np.int64)
        if thread_ids.size == 0:
            return
        counts = np.broadcast_to(
            np.asarray(per_thread, dtype=np.int64), thread_ids.shape
        )
        warp = None
        for arr, geom in self._geom_cache:
            if arr is thread_ids:
                warp = geom[1]
                break
        if warp is None:
            if self._warp_shift is not None:
                warp = thread_ids >> self._warp_shift
            else:
                warp = thread_ids // self.device.warp_size
        nwarps = int(warp.max()) + 1
        warp_max = np.zeros(nwarps, dtype=np.int64)
        np.maximum.at(warp_max, warp, counts)
        self._compute.warp_instructions += int(warp_max.sum())
        self._compute.thread_instructions += int(counts.sum())

    def activate(self, num_active: int) -> None:
        """Record how many launched threads had real work this launch."""
        self._compute.active_threads += int(num_active)

    def barrier(self, times: int = 1) -> None:
        """Record ``__syncthreads()`` executions (one per block each)."""
        self._compute.barriers += int(times) * self.num_blocks

    def uniform_overhead(self, per_thread_instr: int) -> None:
        """Fixed prologue/epilogue cost every launched thread pays."""
        warps = -(-self.num_threads // self.device.warp_size)
        self._compute.warp_instructions += warps * int(per_thread_instr)
        self._compute.thread_instructions += self.num_threads * int(per_thread_instr)

    # ------------------------------------------------------------------
    def build(self) -> KernelTrace:
        """Finalize into an immutable :class:`KernelTrace`."""
        atomic_addrs = (
            np.concatenate(self._atomic_addrs)
            if self._atomic_addrs
            else np.empty(0, dtype=np.int64)
        )
        return KernelTrace(
            name=self.name,
            memory=self._finalize_memory(),
            compute=self._compute,
            num_blocks=self.num_blocks,
            launch=self.launch,
            atomic_addresses=atomic_addrs,
        )

    def _finalize_memory(self) -> MemoryTrace:
        if not self._chunks:
            return MemoryTrace.concatenate([])
        if self._arena is not None and all(c[0] == "a" for c in self._chunks):
            n = self._arena_len
            offs = np.empty(len(self._seg_ends) + 1, dtype=np.int64)
            offs[0] = 0
            offs[1:] = self._seg_ends
            cols = tuple(a[:n] for a in self._arena)
            return MemoryTrace(*cols, seg_offsets=offs)
        parts = []
        for c in self._chunks:
            if c[0] == "a":
                parts.append(
                    MemoryTrace(*(a[c[1]:c[2]] for a in self._arena))
                )
            else:
                parts.append(c[1])
        return MemoryTrace.concatenate(parts)
