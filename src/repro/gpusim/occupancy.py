"""CUDA occupancy calculation for the simulated device.

Occupancy — concurrently resident warps per SM relative to the maximum —
determines how much memory latency warp interleaving can hide, which is the
mechanism behind the paper's Fig. 8 block-size sweep (32-thread blocks leave
SMs starved; ≥512-thread blocks hit resource saturation).
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import DeviceConfig, LaunchConfig

__all__ = ["Occupancy", "compute_occupancy"]


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one launch."""

    blocks_per_sm: int
    warps_per_block: int
    limiting_factor: str  # which resource capped residency

    @property
    def active_warps_per_sm(self) -> int:
        return self.blocks_per_sm * self.warps_per_block

    def fraction(self, device: DeviceConfig) -> float:
        """Achieved occupancy as a fraction of the device maximum."""
        return self.active_warps_per_sm / device.max_warps_per_sm


def compute_occupancy(device: DeviceConfig, launch: LaunchConfig) -> Occupancy:
    """Resident blocks per SM under the four classic hardware limits.

    Mirrors NVIDIA's occupancy calculator: thread, block-slot, register and
    shared-memory limits each cap residency; the tightest one wins.  Warp
    allocation granularity is approximated at warp level (register
    allocation granularity differences across Kepler SKUs are below the
    model's resolution).
    """
    if launch.block_size > device.max_threads_per_block:
        raise ValueError(
            f"block size {launch.block_size} exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    warps_per_block = -(-launch.block_size // device.warp_size)

    limits: dict[str, int] = {}
    limits["threads"] = device.max_threads_per_sm // launch.block_size
    limits["blocks"] = device.max_blocks_per_sm
    regs_per_block = launch.regs_per_thread * launch.block_size
    limits["registers"] = (
        device.registers_per_sm // regs_per_block if regs_per_block else device.max_blocks_per_sm
    )
    limits["shared_memory"] = (
        device.shared_mem_per_sm // launch.shared_mem_per_block
        if launch.shared_mem_per_block
        else device.max_blocks_per_sm
    )

    limiting = min(limits, key=lambda k: limits[k])
    blocks = max(0, limits[limiting])
    if blocks == 0:
        raise ValueError(
            f"launch {launch} cannot fit on {device.name}: {limiting} exhausted"
        )
    return Occupancy(blocks_per_sm=blocks, warps_per_block=warps_per_block, limiting_factor=limiting)
