"""The simulated device: memory allocation, kernel launches, host transfers.

Algorithms use the device like a thin CUDA runtime:

* :meth:`Device.alloc` / :meth:`Device.upload` give :class:`DeviceArray`
  objects — NumPy arrays with a stable simulated *byte address*, so the
  cache model sees realistic address layout and reuse across kernels.
* :meth:`Device.builder` starts a kernel launch; the algorithm performs its
  functional work with NumPy, records memory/instruction events on the
  builder, and :meth:`Device.commit` prices the launch and appends it to
  the timeline.
* :meth:`Device.htod` / :meth:`Device.dtoh` charge PCIe transfer time —
  this is the cost that sinks the 3-step GM baseline, which round-trips the
  graph's conflicts through the host every outer iteration.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .config import DeviceConfig, KEPLER_K20C, LaunchConfig
from .occupancy import compute_occupancy
from .timing import KernelProfile, price_kernel
from .trace import TraceBuilder

__all__ = ["DeviceArray", "TransferEvent", "Timeline", "Device"]

_ALIGNMENT = 256  # CUDA malloc alignment


@dataclass
class DeviceArray:
    """A device-resident array: NumPy values plus a simulated base address."""

    data: np.ndarray
    base: int
    name: str = "buf"

    @property
    def itemsize(self) -> int:
        return self.data.itemsize

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def addr(self, indices: np.ndarray | int | None = None) -> np.ndarray:
        """Byte address(es) of the given element indices (all, if None)."""
        if indices is None:
            indices = np.arange(self.data.size, dtype=np.int64)
        return self.base + np.asarray(indices, dtype=np.int64) * self.itemsize

    def __len__(self) -> int:
        return self.data.size


@dataclass(frozen=True)
class TransferEvent:
    """One PCIe transfer (host<->device)."""

    direction: str  # 'htod' | 'dtoh'
    nbytes: int
    time_us: float


@dataclass
class Timeline:
    """Ordered record of everything the device did."""

    events: list = field(default_factory=list)

    def add(self, event) -> None:
        self.events.append(event)

    def kernels(self) -> Iterator[KernelProfile]:
        return (e for e in self.events if isinstance(e, KernelProfile))

    def transfers(self) -> Iterator[TransferEvent]:
        return (e for e in self.events if isinstance(e, TransferEvent))

    def kernel_time_us(self) -> float:
        return sum(k.time_us for k in self.kernels())

    def transfer_time_us(self) -> float:
        return sum(t.time_us for t in self.transfers())

    def launch_overhead_us(self, device: DeviceConfig) -> float:
        return sum(1 for _ in self.kernels()) * device.kernel_launch_overhead_us

    def total_time_us(self, device: DeviceConfig) -> float:
        """End-to-end simulated time including per-launch overheads."""
        return (
            self.kernel_time_us()
            + self.transfer_time_us()
            + self.launch_overhead_us(device)
        )

    def num_launches(self) -> int:
        return sum(1 for _ in self.kernels())

    def since(self, start: int) -> "Timeline":
        """View of the events appended after position ``start``.

        Lets one long-lived device serve many runs while each run reports
        only its own span: take ``start = len(timeline.events)`` before
        the run and aggregate over ``timeline.since(start)`` after.
        """
        return Timeline(events=self.events[start:])


class Device:
    """A simulated Kepler-class GPU instance.

    Parameters
    ----------
    config:
        Microarchitecture; defaults to the paper's K20c.
    cache_model:
        ``'reuse_distance'`` (default), ``'exact'`` or ``'analytic'`` —
        forwarded to the timing model.
    seed:
        Seed for the stochastic parts of cache extrapolation.
    """

    def __init__(
        self,
        config: DeviceConfig = KEPLER_K20C,
        *,
        cache_model: str = "reuse_distance",
        seed: int = 0,
    ) -> None:
        self.config = config
        self.cache_model = cache_model
        self.seed = seed
        self.timeline = Timeline()
        #: Optional :class:`~repro.obs.tracer.Tracer` (duck-typed); when
        #: set, every priced event is mirrored as a trace span.
        self.tracer = None
        self._next_addr = _ALIGNMENT
        self._launch_counter = 0
        self._pool: dict | None = None  # enable_pool() turns recycling on
        self.pool_hits = 0
        self.pool_misses = 0

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def enable_pool(self) -> None:
        """Turn on the allocation pool (see :meth:`release`).

        Off by default so legacy single-run callers keep exact address
        behavior; the execution engine enables it so worklists and scratch
        buffers recycle across runs instead of consuming fresh address
        space (and fresh cold-cache footprints) every time.
        """
        if self._pool is None:
            self._pool = {}

    @staticmethod
    def _pool_key(shape, dtype) -> tuple:
        shape_t = tuple(shape) if isinstance(shape, (tuple, list)) else (int(shape),)
        return (shape_t, np.dtype(dtype).str)

    def alloc(self, shape, dtype, *, name: str = "buf", fill=None) -> DeviceArray:
        """Allocate a device array (optionally filled with a constant).

        With the pool enabled, an exact shape/dtype match released earlier
        is reused (same simulated address); ``fill`` is reapplied, but
        unfilled reuse sees stale contents — exactly like ``cudaMalloc``
        recycling, so initialize what you read.
        """
        if self._pool is not None:
            free = self._pool.get(self._pool_key(shape, dtype))
            if free:
                buf = free.pop()
                buf.name = name
                if fill is not None:
                    buf.data.fill(fill)
                self.pool_hits += 1
                if self.tracer is not None:
                    self.tracer.event(
                        f"alloc:{name}", "alloc", nbytes=buf.nbytes, pooled=1
                    )
                return buf
            self.pool_misses += 1
        arr = np.empty(shape, dtype=dtype)
        if fill is not None:
            arr.fill(fill)
        buf = self._register(arr, name)
        if self.tracer is not None:
            self.tracer.event(f"alloc:{name}", "alloc", nbytes=buf.nbytes, pooled=0)
        return buf

    def release(self, buf: DeviceArray) -> None:
        """Return a buffer to the allocation pool (no-op when disabled)."""
        if self._pool is not None:
            self._pool.setdefault(self._pool_key(buf.data.shape, buf.data.dtype), []).append(buf)

    def upload(self, host_array: np.ndarray, *, name: str = "buf") -> DeviceArray:
        """Copy a host array to the device, charging PCIe time."""
        arr = np.array(host_array, copy=True)
        buf = self._register(arr, name)
        self.htod(arr.nbytes)
        return buf

    def register(self, host_array: np.ndarray, *, name: str = "buf") -> DeviceArray:
        """Place an array on the device *without* charging PCIe time.

        Use for data assumed resident before timing starts (the paper
        excludes the one-time input transfer from all schemes' timings).
        """
        return self._register(np.array(host_array, copy=True), name)

    def _register(self, arr: np.ndarray, name: str) -> DeviceArray:
        base = self._next_addr
        self._next_addr += (arr.nbytes + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
        return DeviceArray(data=arr, base=base, name=name)

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def _transfer(self, direction: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("transfer size cannot be negative")
        time_us = self.config.pcie_latency_us + nbytes / (
            self.config.pcie_bandwidth_gbs * 1e3
        )
        self.timeline.add(TransferEvent(direction, nbytes, time_us))
        if self.tracer is not None:
            self.tracer.event(direction, direction, duration_us=time_us, nbytes=nbytes)

    def htod(self, nbytes: int) -> None:
        """Host-to-device transfer of ``nbytes``."""
        self._transfer("htod", nbytes)

    def dtoh(self, nbytes: int) -> None:
        """Device-to-host transfer of ``nbytes``."""
        self._transfer("dtoh", nbytes)

    # ------------------------------------------------------------------
    # Kernel launches
    # ------------------------------------------------------------------
    def builder(
        self, num_threads: int, launch: LaunchConfig | None = None, *, name: str = "kernel"
    ) -> TraceBuilder:
        """Begin recording a kernel launch over ``num_threads`` threads."""
        launch = launch or LaunchConfig()
        tb = TraceBuilder(self.config, launch, num_threads, name=name)
        tb.set_residency(compute_occupancy(self.config, launch).blocks_per_sm)
        return tb

    def _price(self, builder: TraceBuilder, seed: int) -> KernelProfile:
        """Build and price a recorded launch (pure: no device state touched)."""
        return price_kernel(
            builder.build(),
            self.config,
            cache_model=self.cache_model,
            seed=seed,
        )

    def _record(self, profile: KernelProfile) -> KernelProfile:
        self.timeline.add(profile)
        if self.tracer is not None:
            self.tracer.event(
                profile.name,
                "kernel",
                duration_us=profile.time_us + self.config.kernel_launch_overhead_us,
                kernel_us=profile.time_us,
                launches=1,
                transactions=profile.memory.transactions,
                dram_bytes=profile.memory.dram_bytes,
                occupancy=profile.occupancy,
                bound=profile.bound,
            )
        return profile

    def commit(self, builder: TraceBuilder) -> KernelProfile:
        """Price the recorded launch and append it to the timeline."""
        profile = self._price(builder, self.seed + self._launch_counter)
        self._launch_counter += 1
        return self._record(profile)

    def commit_pair(
        self, first: TraceBuilder, second: TraceBuilder
    ) -> tuple[KernelProfile, KernelProfile]:
        """Price two recorded launches concurrently.

        Byte-identical to ``(commit(first), commit(second))``: pricing is a
        pure function of (trace, config, seed), seeds are assigned in call
        order from the launch counter, and the timeline/tracer events are
        appended in order after both prices land.  The host-side win is
        overlapping the two sort/scan-heavy pricing passes (NumPy releases
        the GIL in the kernels that dominate them).
        """
        seed0 = self.seed + self._launch_counter
        if (os.cpu_count() or 1) > 1:
            with ThreadPoolExecutor(max_workers=1) as pool:
                future = pool.submit(self._price, second, seed0 + 1)
                profile_a = self._price(first, seed0)
                profile_b = future.result()
        else:  # single-core host: overlap buys nothing, skip the thread hop
            profile_a = self._price(first, seed0)
            profile_b = self._price(second, seed0 + 1)
        self._launch_counter += 2
        return self._record(profile_a), self._record(profile_b)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear the timeline (memory addresses keep advancing)."""
        self.timeline = Timeline()
        self._launch_counter = 0

    def total_time_us(self) -> float:
        return self.timeline.total_time_us(self.config)
