"""The timing model: prices a :class:`KernelTrace` in simulated cycles.

Structure (classic bottleneck/latency model, cf. GPU analytical models in
the literature): a kernel's duration is the *maximum* of four overlapping
resource demands —

* **compute**: warp instructions over the SMs' issue bandwidth,
* **memory latency**: per-transaction latencies (after the cache hierarchy)
  divided by the memory-level parallelism that resident warps provide —
  this is the term warp interleaving attacks, and the one that dominates
  graph coloring (paper Fig. 3),
* **memory bandwidth**: DRAM bytes over peak bandwidth,
* **atomics**: serialized service at the per-partition atomic units,

plus additive synchronization cost.  The same structure produces the
paper's Fig. 3 profile (both utilizations < 60 %, memory-dependency stalls
dominant), Fig. 8 (occupancy-controlled latency hiding) and the
atomic-vs-prefix-sum gap (Fig. 5) without any per-figure tuning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..compiledsim import dispatch as _compiled
from .cache import (
    analytic_hits,
    reuse_distance_hits,
    SetAssociativeCache,
    CacheConfig,
    _stack_distance_threshold,
)
from .config import DeviceConfig
from .occupancy import Occupancy, compute_occupancy
from .trace import AccessKind, KernelTrace

__all__ = ["MemoryStats", "KernelProfile", "price_kernel"]

#: Cycles a block-wide barrier costs (pipeline drain + reconvergence).
_BARRIER_CYCLES = 40
#: Fraction of compute cycles stalled on in-register dependent chains.
_EXEC_DEP_FACTOR = 0.18
#: Small fixed profiler categories (fractions of total stall attribution).
_FIXED_STALLS = {"instruction_fetch": 0.03, "not_selected": 0.07, "other": 0.04}


@dataclass
class MemoryStats:
    """Cache-hierarchy outcome for one kernel launch."""

    transactions: int = 0
    ldg_accesses: int = 0
    ro_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_transactions: int = 0
    dram_bytes: int = 0
    total_latency_cycles: float = 0.0

    @property
    def ro_hit_rate(self) -> float:
        return self.ro_hits / self.ldg_accesses if self.ldg_accesses else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0


@dataclass
class KernelProfile:
    """Priced launch: duration, bottleneck, utilizations, stall breakdown."""

    name: str
    cycles: float
    time_us: float
    num_blocks: int
    block_size: int
    occupancy: float
    bound: str  # 'compute' | 'memory_latency' | 'memory_bandwidth' | 'atomic'
    terms: dict[str, float]  # resource-demand cycles per term
    stalls: dict[str, float]  # stall-reason fractions (sum to 1)
    memory: MemoryStats
    simd_efficiency: float
    compute_utilization: float  # fraction of peak issue bandwidth achieved
    bandwidth_utilization: float  # fraction of peak DRAM bandwidth achieved
    extra: dict = field(default_factory=dict)


def _walk_hierarchy(
    trace: KernelTrace,
    device: DeviceConfig,
    *,
    cache_model: str,
    rng: np.random.Generator,
) -> tuple[MemoryStats, float]:
    """Run the transaction stream through RO cache -> L2 -> DRAM.

    Returns the populated :class:`MemoryStats` and the summed *stalling*
    latency (stores are write-buffered and do not stall the pipeline, but
    their DRAM traffic still counts against bandwidth).
    """
    mem = trace.memory
    stats = MemoryStats(transactions=len(mem))
    if len(mem) == 0:
        return stats, 0.0

    if cache_model == "reuse_distance":
        fused = _compiled_hierarchy(mem, device, rng)
        if fused is not None:
            return fused

    order = mem.issue_order()
    kind = mem.kind[order]
    line = mem.line_id[order]
    sm = mem.sm_id[order]

    is_ldg = kind == AccessKind.LDG
    stats.ldg_accesses = int(np.count_nonzero(is_ldg))

    # --- Read-only (texture) cache: private per SM.  Simulate the busiest
    # SM's stream exactly and extrapolate its hit rate to the device: block
    # scheduling is round-robin, so per-SM streams are statistically alike.
    ro_hit = np.zeros(len(mem), dtype=bool)
    if stats.ldg_accesses:
        # bincount over the small SM-id range; argmax breaks count ties
        # toward the lowest id exactly as the sorted-unique version did.
        counts = np.bincount(sm[is_ldg], minlength=device.num_sms)
        rep_sm = int(np.argmax(counts))
        rep_mask = is_ldg & (sm == rep_sm)
        rep_lines = line[rep_mask]
        if cache_model == "exact":
            ro = SetAssociativeCache(
                CacheConfig(device.readonly_cache_bytes, device.cache_line_bytes,
                            device.readonly_cache_ways)
            )
            rep_hits = ro.run(rep_lines)
        elif cache_model == "analytic":
            n_uniq = int(np.unique(rep_lines).size)
            hits = analytic_hits(rep_lines.size, n_uniq, device.readonly_cache_lines)
            rep_hits = np.zeros(rep_lines.size, dtype=bool)
            rep_hits[: min(hits, rep_lines.size)] = True  # count-only placeholder
        else:
            rep_hits = reuse_distance_hits(rep_lines, device.readonly_cache_lines)
        rate = float(rep_hits.mean()) if rep_hits.size else 0.0
        ro_hit[rep_mask] = rep_hits
        other = is_ldg ^ rep_mask  # rep_mask ⊆ is_ldg: ldg on the other SMs
        # Other SMs: Bernoulli with the measured rate (deterministic rng).
        ro_hit[other] = rng.random(int(other.sum())) < rate
        stats.ro_hits = int(ro_hit.sum())

    # --- L2: device-wide, sees everything the RO cache did not absorb.
    to_l2 = ~ro_hit
    l2_lines = line[to_l2]
    stats.l2_accesses = int(l2_lines.size)
    if cache_model == "exact":
        l2 = SetAssociativeCache(
            CacheConfig(device.l2_cache_bytes, device.cache_line_bytes, device.l2_cache_ways)
        )
        l2_hit_sub = l2.run(l2_lines)
    elif cache_model == "analytic":
        n_uniq = int(np.unique(l2_lines).size)
        hits = analytic_hits(l2_lines.size, n_uniq, device.l2_cache_lines)
        l2_hit_sub = np.zeros(l2_lines.size, dtype=bool)
        if l2_lines.size:
            l2_hit_sub[rng.permutation(l2_lines.size)[:hits]] = True
    else:
        l2_hit_sub = reuse_distance_hits(l2_lines, device.l2_cache_lines)
    l2_hit = np.zeros(len(mem), dtype=bool)
    l2_hit[to_l2] = l2_hit_sub
    stats.l2_hits = int(l2_hit.sum())

    dram = to_l2 & ~l2_hit
    stats.dram_transactions = int(dram.sum())
    stats.dram_bytes = stats.dram_transactions * device.cache_line_bytes

    # --- stalling latency: loads and ldg block dependents; atomics return a
    # value (the paper's worklist push uses atomicAdd's return), so they
    # stall too; plain stores retire through the write buffer.  Every
    # access lands in exactly one of {ro_hit, l2_hit, dram}, so the total
    # is count x latency per level; latencies are integer cycles, so the
    # integer sum equals the old per-access float array's sum exactly.
    stalls = ~(kind == AccessKind.STORE)
    is_atomic = kind == AccessKind.ATOMIC
    total = (
        stats.ro_hits * device.readonly_hit_latency  # RO hits are ldg-only
        + int(np.count_nonzero(l2_hit & stalls)) * device.l2_hit_latency
        + int(np.count_nonzero(dram & stalls)) * device.dram_latency
        + int(np.count_nonzero(is_atomic)) * device.atomic_op_cycles
    )
    stats.total_latency_cycles = float(total)
    return stats, stats.total_latency_cycles


def _reuse_gap_hits(gap: np.ndarray, capacity_lines: int) -> np.ndarray:
    """Hit mask from substream reuse gaps (-1 = first touch).

    Exactly :func:`~repro.gpusim.cache.reuse_distance_hits` on the same
    substream: first touches are compulsory misses, re-touches hit when
    their gap clears the expected-stack-distance threshold.
    """
    if capacity_lines <= 0:
        return np.zeros(gap.size, dtype=bool)
    num_unique = int(np.count_nonzero(gap < 0))
    threshold = _stack_distance_threshold(num_unique, capacity_lines)
    if math.isinf(threshold):
        return gap >= 0
    return (gap >= 0) & (gap <= threshold)


def _compiled_hierarchy(
    mem, device: DeviceConfig, rng: np.random.Generator
) -> tuple[MemoryStats, float] | None:
    """Fused compiled-tier hierarchy walk; ``None`` declines.

    Two C passes over the transaction stream in issue order replace the
    vectorized path's permutation gathers, mask algebra, substream
    compactions and argsort-based reuse scans.  Every decision the
    vectorized path makes is reproduced bit-for-bit: the same
    representative-SM choice, the same substream reuse gaps against the
    same thresholds, and the same Bernoulli draws consumed in the same
    order — so this path must decline *before* the first RNG draw or
    not at all.
    """
    order = mem.issue_order()
    if not _compiled.walk_supported(order, mem.kind, mem.line_id, mem.sm_id):
        return None
    ldg = int(AccessKind.LDG)
    ldg_per_sm, num_atomics, max_line, max_sm = _compiled.walk_stats(
        mem.kind, mem.sm_id, mem.line_id, device.num_sms, ldg,
        int(AccessKind.ATOMIC),
    )
    if max_sm >= device.num_sms or max_line >= _compiled.WALK_LINE_CAP:
        return None

    stats = MemoryStats(transactions=len(mem))
    stats.ldg_accesses = int(ldg_per_sm.sum())
    if stats.ldg_accesses:
        rep_sm = int(np.argmax(ldg_per_sm))
        rep_gap = _compiled.walk_ro(
            order, mem.kind, mem.line_id, mem.sm_id, ldg, rep_sm,
            int(ldg_per_sm[rep_sm]), max_line,
        )
        rep_hits = _reuse_gap_hits(rep_gap, device.readonly_cache_lines)
        rate = float(rep_hits.mean()) if rep_hits.size else 0.0
        draws = rng.random(stats.ldg_accesses - rep_gap.size)
    else:
        rep_sm = -1
        rep_hits = np.zeros(0, dtype=bool)
        draws = np.zeros(0)
        rate = 0.0

    l2_gap, l2_stall, ro_hits = _compiled.walk_l2(
        order, mem.kind, mem.line_id, mem.sm_id, ldg,
        int(AccessKind.STORE), rep_sm, rep_hits, draws, rate, max_line,
    )
    stats.ro_hits = ro_hits
    stats.l2_accesses = int(l2_gap.size)
    l2_hit_sub = _reuse_gap_hits(l2_gap, device.l2_cache_lines)
    stats.l2_hits = int(np.count_nonzero(l2_hit_sub))
    stats.dram_transactions = stats.l2_accesses - stats.l2_hits
    stats.dram_bytes = stats.dram_transactions * device.cache_line_bytes

    stall_sub = l2_stall.view(bool)
    total = (
        stats.ro_hits * device.readonly_hit_latency
        + int(np.count_nonzero(l2_hit_sub & stall_sub)) * device.l2_hit_latency
        + int(np.count_nonzero(~l2_hit_sub & stall_sub)) * device.dram_latency
        + num_atomics * device.atomic_op_cycles
    )
    stats.total_latency_cycles = float(total)
    return stats, stats.total_latency_cycles


def _atomic_serialization(trace: KernelTrace, device: DeviceConfig) -> float:
    """Cycles the busiest atomic partition spends servicing this launch.

    Addresses map to memory partitions by line id; every atomic to the same
    partition serializes at its atomic unit, so one hot counter (the naive
    worklist tail pointer) lands its entire operation count on one unit.
    """
    addrs = trace.atomic_addresses
    if addrs.size == 0:
        return 0.0
    lines = addrs >> (int(device.cache_line_bytes).bit_length() - 1)
    partitions = lines % device.num_memory_partitions
    load = np.bincount(partitions.astype(np.int64), minlength=device.num_memory_partitions)
    return float(load.max()) * device.atomic_op_cycles


def price_kernel(
    trace: KernelTrace,
    device: DeviceConfig,
    *,
    occupancy: Occupancy | None = None,
    cache_model: str = "reuse_distance",
    seed: int = 0,
) -> KernelProfile:
    """Price one kernel launch; see module docstring for the model."""
    if occupancy is None:
        occupancy = compute_occupancy(device, trace.launch)
    rng = np.random.default_rng(seed)

    mem_stats, stall_latency = _walk_hierarchy(
        trace, device, cache_model=cache_model, rng=rng
    )

    # Resident parallelism: how many blocks actually run concurrently.  A
    # small grid cannot fill the device no matter the occupancy limit.
    resident_blocks = min(trace.num_blocks, occupancy.blocks_per_sm * device.num_sms)
    busy_sms = min(device.num_sms, trace.num_blocks)
    warps_per_sm = max(
        1.0, resident_blocks * occupancy.warps_per_block / max(busy_sms, 1)
    )

    # --- resource-demand terms (cycles) ------------------------------
    compute_cycles = (
        trace.compute.warp_instructions / device.issue_slots_per_cycle / max(busy_sms, 1)
    )
    mlp = warps_per_sm * device.max_outstanding_per_warp
    latency_cycles = (stall_latency / max(busy_sms, 1)) / mlp
    bandwidth_cycles = mem_stats.dram_bytes / device.dram_bytes_per_cycle
    atomic_cycles = _atomic_serialization(trace, device)
    sync_cycles = trace.compute.barriers * _BARRIER_CYCLES / max(busy_sms, 1)

    terms = {
        "compute": compute_cycles,
        "memory_latency": latency_cycles,
        "memory_bandwidth": bandwidth_cycles,
        "atomic": atomic_cycles,
        "synchronization": sync_cycles,
    }
    bound = max(
        ("compute", "memory_latency", "memory_bandwidth", "atomic"),
        key=lambda k: terms[k],
    )
    cycles = max(compute_cycles, latency_cycles, bandwidth_cycles, atomic_cycles)
    cycles += sync_cycles
    # Pipeline ramp: the first accesses of each wave cannot be overlapped.
    waves = max(1, -(-trace.num_blocks // max(resident_blocks, 1)))
    cycles += waves * device.dram_latency
    time_us = cycles / device.cycles_per_us

    # --- stall attribution (Fig. 3b categories) -----------------------
    stall_sources = {
        "memory_dependency": latency_cycles + bandwidth_cycles + atomic_cycles,
        "execution_dependency": compute_cycles * _EXEC_DEP_FACTOR,
        "synchronization": sync_cycles,
    }
    src_total = sum(stall_sources.values()) or 1.0
    variable = 1.0 - sum(_FIXED_STALLS.values())
    stalls = {k: variable * v / src_total for k, v in stall_sources.items()}
    stalls.update(_FIXED_STALLS)

    return KernelProfile(
        name=trace.name,
        cycles=cycles,
        time_us=time_us,
        num_blocks=trace.num_blocks,
        block_size=trace.launch.block_size,
        occupancy=occupancy.fraction(device),
        bound=bound,
        terms=terms,
        stalls=stalls,
        memory=mem_stats,
        simd_efficiency=trace.compute.simd_efficiency,
        compute_utilization=min(1.0, compute_cycles / cycles) if cycles else 0.0,
        bandwidth_utilization=min(1.0, bandwidth_cycles / cycles) if cycles else 0.0,
    )
