"""Cache models for the simulated memory hierarchy.

Three fidelity levels, trading accuracy against speed:

1. :class:`SetAssociativeCache` — an exact sequential set-associative LRU
   simulator.  O(1) per access but Python-loop bound; used as the ground
   truth that the fast models are validated against in the test suite, and
   usable directly on small traces.
2. :func:`reuse_distance_hits` — the production model.  Fully vectorized:
   computes every access's reuse distance (accesses since the previous
   touch of the same line) and converts it to an expected *stack* distance
   (distinct lines in the window) under a uniform-popularity approximation,
   then thresholds against capacity.  This is the classical average-stack-
   distance approximation for fully-associative LRU.
3. :func:`analytic_hits` — no trace at all, just access and footprint
   counts; used by the ``analytic`` timing backend for very large graphs.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..compiledsim import dispatch as _compiled

__all__ = [
    "CacheConfig",
    "SetAssociativeCache",
    "reuse_distance_hits",
    "analytic_hits",
    "CacheModelChoice",
]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int = 128
    ways: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a whole number of lines")
        if self.num_lines % self.ways:
            raise ValueError("lines must divide evenly into ways")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


class SetAssociativeCache:
    """Exact set-associative LRU cache simulator (reference model).

    Per-set ``OrderedDict`` recency lists make each access O(1); this is
    the slow-but-exact baseline for validating the vectorized model.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, line_id: int) -> bool:
        """Touch ``line_id``; returns True on hit."""
        s = self._sets[line_id % self.config.num_sets]
        if line_id in s:
            s.move_to_end(line_id)
            self.hits += 1
            return True
        self.misses += 1
        if len(s) >= self.config.ways:
            s.popitem(last=False)
        s[line_id] = True
        return False

    def run(self, line_ids: np.ndarray) -> np.ndarray:
        """Simulate a whole stream; returns a boolean hit mask."""
        out = np.empty(len(line_ids), dtype=bool)
        for i, lid in enumerate(np.asarray(line_ids, dtype=np.int64)):
            out[i] = self.access(int(lid))
        return out

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _stack_distance_threshold(num_unique: int, capacity_lines: int) -> float:
    """Largest reuse distance that still hits, under uniform popularity.

    In a reference window of length ``L`` drawn from ``U`` equally likely
    lines, the expected number of distinct lines is ``U * (1 - (1-1/U)^L)``
    ≈ ``U * (1 - exp(-L/U))``.  An LRU cache of ``C`` lines hits when that
    count is below ``C``; inverting gives the threshold on ``L``.
    """
    if num_unique <= capacity_lines:
        return math.inf
    frac = capacity_lines / num_unique
    return -num_unique * math.log1p(-frac)


def reuse_distance_hits(line_ids: np.ndarray, capacity_lines: int) -> np.ndarray:
    """Vectorized LRU approximation: boolean hit mask for a line-id stream.

    Every access's reuse distance (index gap to the previous access of the
    same line) is computed with one stable argsort; the hit/miss decision
    thresholds the gap against the expected-stack-distance inversion above.
    First touches are compulsory misses.
    """
    # Keep the caller's (integer) dtype: the stable argsort below is a
    # radix sort, so int32 line-id streams sort in half the passes.
    line_ids = np.asarray(line_ids)
    n = line_ids.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    if capacity_lines <= 0:
        return np.zeros(n, dtype=bool)

    scanned = _compiled.reuse_prev(line_ids)
    if scanned is not None:
        # Compiled engine: one O(n) last-seen hash scan. The (idx, prev)
        # pair set is exactly the argsort formulation's — the uses below
        # are a scatter and an elementwise gap test, both order-free.
        idx, prev, num_unique = scanned
    else:
        order = np.argsort(line_ids, kind="stable")
        sorted_ids = line_ids[order]
        same_as_prev = np.empty(n, dtype=bool)
        same_as_prev[0] = False
        np.equal(sorted_ids[1:], sorted_ids[:-1], out=same_as_prev[1:])

        # Work on the re-touch subset only: first touches are compulsory
        # misses, so there is no need to materialize full-size prev-index
        # and gap arrays just to mask them out again.
        repeat_pos = np.flatnonzero(same_as_prev)
        idx = order[repeat_pos]  # stream position of each re-touch
        prev = order[repeat_pos - 1]  # previous touch of the same line
        num_unique = n - repeat_pos.size

    threshold = _stack_distance_threshold(num_unique, capacity_lines)

    hits = np.zeros(n, dtype=bool)
    if math.isinf(threshold):
        hits[idx] = True
    else:
        hits[idx[(idx - prev) <= threshold]] = True
    return hits


def analytic_hits(num_accesses: int, num_unique_lines: int, capacity_lines: int) -> int:
    """Expected hit count without a trace (footprint model).

    If the working set fits, only compulsory misses remain.  Otherwise each
    re-access hits with probability ``capacity / footprint`` (steady-state
    LRU under uniform random access).
    """
    if num_accesses <= 0 or num_unique_lines <= 0:
        return 0
    reuses = max(0, num_accesses - num_unique_lines)
    if num_unique_lines <= capacity_lines:
        return reuses
    return int(round(reuses * capacity_lines / num_unique_lines))


#: Names accepted by timing backends for cache-model selection.
CacheModelChoice = ("reuse_distance", "exact", "analytic")
