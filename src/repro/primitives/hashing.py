"""Vectorized integer hash families for the multi-hash MIS method.

``csrcolor`` (Naumov et al.) replaces JP's random priorities with several
deterministic hash functions of the vertex id: each hash induces one
priority ordering, and both its local maxima *and* local minima form
independent sets — so N hashes yield 2N colors per round.

The finalizers below are avalanche mixers (murmur3/splitmix-style): cheap,
statistically uniform, and seedable so each of the N hashes is independent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["murmur3_finalize", "splitmix64", "hash_family", "DEFAULT_NUM_HASHES"]

#: csrcolor's default hash count (2 hashes -> 4 independent sets per round).
#: Few hashes per round is what makes cuSPARSE burn colors: every round
#: consumes 2N fresh colors while coloring only ~half the remaining set.
DEFAULT_NUM_HASHES = 2

_U32 = np.uint32
_U64 = np.uint64


def murmur3_finalize(x: np.ndarray, seed: int = 0) -> np.ndarray:
    """Murmur3 32-bit finalizer; full avalanche on uint32 inputs."""
    h = x.astype(_U32) ^ _U32(seed & 0xFFFFFFFF)
    with np.errstate(over="ignore"):
        h ^= h >> _U32(16)
        h *= _U32(0x85EBCA6B)
        h ^= h >> _U32(13)
        h *= _U32(0xC2B2AE35)
        h ^= h >> _U32(16)
    return h


def splitmix64(x: np.ndarray, seed: int = 0) -> np.ndarray:
    """SplitMix64 finalizer; used when 64-bit priorities are required."""
    z = x.astype(_U64) + _U64((seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        z ^= z >> _U64(31)
    return z


def hash_family(vertex_ids: np.ndarray, num_hashes: int, *, seed: int = 0) -> np.ndarray:
    """Matrix of shape ``(num_hashes, n)``: one hash value row per function.

    Rows are pairwise-independent mixes of the vertex id; ties across
    vertices are broken downstream by vertex id, so exact collisions are
    harmless for MIS correctness.
    """
    if num_hashes < 1:
        raise ValueError("num_hashes must be >= 1")
    vertex_ids = np.asarray(vertex_ids)
    out = np.empty((num_hashes, vertex_ids.size), dtype=np.uint32)
    for k in range(num_hashes):
        out[k] = murmur3_finalize(vertex_ids, seed=seed * 1_000_003 + k * 7919 + 1)
    return out
