"""Bulk-synchronous GPU algorithmic primitives (scan, reduce, compaction)."""

from .compact import charge_compaction, compact_indices
from .hashing import DEFAULT_NUM_HASHES, hash_family, murmur3_finalize, splitmix64
from .reduce import block_reduce_cost, count_nonzero, device_reduce
from .scan import (
    BlockScanCost,
    blelloch_cost,
    exclusive_scan,
    hillis_steele_cost,
    inclusive_scan,
    segmented_exclusive_scan,
)
from .worklist import DoubleBufferedWorklist

__all__ = [
    "BlockScanCost",
    "DEFAULT_NUM_HASHES",
    "DoubleBufferedWorklist",
    "blelloch_cost",
    "block_reduce_cost",
    "charge_compaction",
    "compact_indices",
    "count_nonzero",
    "device_reduce",
    "exclusive_scan",
    "hash_family",
    "hillis_steele_cost",
    "inclusive_scan",
    "murmur3_finalize",
    "segmented_exclusive_scan",
    "splitmix64",
]
