"""Stream compaction: gather the indices of set flags into a dense array.

This is the building block of the data-driven scheme's conflict kernel
(Alg. 5 lines 11-18): every thread decides whether its vertex re-enters the
worklist, and the set of survivors must land densely in the out worklist.
Two strategies exist, matching the paper's atomic-reduction discussion:

* ``atomic`` — each surviving thread performs ``atomicAdd(tail, 1)`` and
  writes at the returned slot.  Simple, but every push serializes on one
  counter address (one atomic unit services them all).
* ``scan``  — per-block prefix sum computes local offsets; one
  ``atomicAdd`` per *block* reserves a contiguous range (Fig. 5).

Both produce identical contents; ``scan`` additionally preserves input
order within and across blocks (the atomic variant's order is
scheduling-dependent, which we model by keeping index order — order never
affects correctness, only determinism).
"""

from __future__ import annotations

import numpy as np

from ..compiledsim import dispatch as _compiled
from .scan import blelloch_cost, exclusive_scan

__all__ = ["compact_indices", "charge_compaction"]


def compact_indices(flags: np.ndarray) -> np.ndarray:
    """Indices ``i`` with ``flags[i]`` true, in increasing order."""
    flags = np.asarray(flags)
    packed = _compiled.pack_mask(flags)
    if packed is not None:
        return packed
    return np.flatnonzero(flags).astype(np.int64)


def charge_compaction(
    builder,
    flags: np.ndarray,
    out_array,
    tail_counter,
    *,
    use_scan: bool,
    thread_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Record the cost of compacting ``flags`` into ``out_array``.

    Parameters
    ----------
    builder:
        The :class:`~repro.gpusim.trace.TraceBuilder` of the running kernel.
    flags:
        Per-thread predicate (parallel to the launch domain unless
        ``thread_ids`` maps them explicitly).
    out_array, tail_counter:
        Device arrays receiving the compacted indices / the global tail.
    use_scan:
        Choose the prefix-sum strategy over per-push atomics.

    Returns the compacted index array (functional result).
    """
    flags = np.asarray(flags, dtype=bool)
    selected = compact_indices(flags)
    if thread_ids is None:
        thread_ids = np.arange(flags.size, dtype=np.int64)
    sel_threads = thread_ids[selected]

    if use_scan:
        # Block-local Blelloch scan in shared memory: charged to every
        # launched thread (all participate in the scan regardless of flag).
        cost = blelloch_cost(builder.launch.block_size)
        builder.uniform_overhead(cost.instructions_per_thread)
        builder.barrier(cost.barriers)
        # One atomic per block that has at least one surviving element.
        blocks_with_items = np.unique(sel_threads // builder.launch.block_size)
        if blocks_with_items.size:
            rep_threads = blocks_with_items * builder.launch.block_size
            builder.atomic(rep_threads, np.full(rep_threads.size, tail_counter.base))
        # Scatter offsets are exact: scan guarantees dense placement.
        offsets = exclusive_scan(flags.astype(np.int64))[selected]
    else:
        # One global atomic per surviving thread, all on one counter line.
        if sel_threads.size:
            builder.atomic(sel_threads, np.full(sel_threads.size, tail_counter.base))
        offsets = np.arange(selected.size, dtype=np.int64)

    if selected.size:
        builder.store(sel_threads, out_array.addr(offsets))
    return selected
