"""Double-buffered device worklist (Alg. 5's ``swap(W_in, W_out)``).

Nasre et al.'s double-buffering trick: keep two queues and swap the
*pointers* between iterations instead of copying elements.  The swap is
free; only the tail-counter reset costs a (tiny) kernel or memset.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.device import Device, DeviceArray

__all__ = ["DoubleBufferedWorklist"]


class DoubleBufferedWorklist:
    """A pair of device queues referenced through swappable handles."""

    def __init__(self, device: Device, capacity: int, *, name: str = "worklist") -> None:
        """``device`` is anything with the allocator surface of
        :class:`~repro.gpusim.device.Device` (a device or an execution
        backend); with its pool enabled, released worklists recycle."""
        if capacity < 1:
            raise ValueError("worklist capacity must be positive")
        self.capacity = capacity
        self._device = device
        self._in = device.alloc(capacity, np.int32, name=f"{name}_a", fill=0)
        self._out = device.alloc(capacity, np.int32, name=f"{name}_b", fill=0)
        self.tail_in = device.alloc(1, np.int32, name=f"{name}_tail_a", fill=0)
        self.tail_out = device.alloc(1, np.int32, name=f"{name}_tail_b", fill=0)
        self._size_in = 0
        self._size_out = 0

    # -- host-side management ------------------------------------------
    def initialize(self, items: np.ndarray) -> None:
        """Fill the *in* queue (e.g. all vertices before the first round)."""
        items = np.asarray(items, dtype=np.int32)
        if items.size > self.capacity:
            raise ValueError("worklist overflow")
        self._in.data[: items.size] = items
        self._size_in = int(items.size)
        self.tail_in.data[0] = items.size

    @property
    def in_buffer(self) -> DeviceArray:
        return self._in

    @property
    def out_buffer(self) -> DeviceArray:
        return self._out

    @property
    def size(self) -> int:
        """Number of items pending in the *in* queue."""
        return self._size_in

    def items(self) -> np.ndarray:
        """Contents of the *in* queue."""
        return self._in.data[: self._size_in].astype(np.int64)

    def publish(self, items: np.ndarray) -> None:
        """Record the functional contents pushed to the *out* queue."""
        items = np.asarray(items, dtype=np.int32)
        if items.size > self.capacity:
            raise ValueError("worklist overflow")
        self._out.data[: items.size] = items
        self._size_out = int(items.size)
        self.tail_out.data[0] = items.size

    def swap(self) -> None:
        """Exchange the queue handles — pointer swap, zero data movement."""
        self._in, self._out = self._out, self._in
        self.tail_in, self.tail_out = self.tail_out, self.tail_in
        self._size_in, self._size_out = self._size_out, 0
        self.tail_out.data[0] = 0

    def __len__(self) -> int:
        return self._size_in

    def reset(self) -> None:
        """Empty both queues (reuse the same device buffers for a new run)."""
        self._size_in = self._size_out = 0
        self.tail_in.data[0] = 0
        self.tail_out.data[0] = 0

    def release(self) -> None:
        """Return the queue buffers to the device's allocation pool.

        A no-op unless the device's pool is enabled (the execution engine
        enables it); after release the worklist must not be used again.
        """
        release = getattr(self._device, "release", None)
        if release is not None:
            for buf in (self._in, self._out, self.tail_in, self.tail_out):
                release(buf)
