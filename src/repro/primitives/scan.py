"""Parallel prefix sum (scan) — the primitive behind atomic-free worklists.

Merrill et al. (and the paper, Section III.C) replace one global atomic per
worklist push with a block-level prefix sum over per-thread item counts:
threads learn their scatter offsets locally (shared memory), and only one
``atomicAdd`` per *block* reserves space in the global queue.

Two classic algorithms are provided, both functionally (NumPy) and as cost
descriptors the kernel instrumentation charges:

* Blelloch's work-efficient scan: 2·(n−1) adds in 2·log2(n) sweeps.
* Hillis–Steele (inclusive) scan: n·log2(n) adds in log2(n) steps — fewer
  barriers, more work; what CUB uses within a warp where lockstep makes
  barriers free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "segmented_exclusive_scan",
    "BlockScanCost",
    "blelloch_cost",
    "hillis_steele_cost",
]


def exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum; ``out[i] = sum(values[:i])``, ``out[0] = 0``."""
    values = np.asarray(values)
    out = np.empty(values.size, dtype=np.int64)
    if values.size:
        out[0] = 0
        np.cumsum(values[:-1], out=out[1:])
    return out


def inclusive_scan(values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum; ``out[i] = sum(values[:i+1])``."""
    return np.cumsum(np.asarray(values), dtype=np.int64)


def segmented_exclusive_scan(values: np.ndarray, segment_ids: np.ndarray) -> np.ndarray:
    """Exclusive scan restarting at every segment boundary.

    ``segment_ids`` must be non-decreasing.  Used to compute per-block
    scatter offsets for all blocks at once (each block is a segment).
    """
    values = np.asarray(values, dtype=np.int64)
    segment_ids = np.asarray(segment_ids)
    if values.shape != segment_ids.shape:
        raise ValueError("values and segment_ids must be parallel")
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(np.diff(segment_ids) < 0):
        raise ValueError("segment_ids must be non-decreasing")
    total = exclusive_scan(values)
    # Subtract each segment's running total at its first element.
    first = np.empty(values.size, dtype=bool)
    first[0] = True
    first[1:] = segment_ids[1:] != segment_ids[:-1]
    seg_base = np.where(first, total, 0)
    np.maximum.accumulate(seg_base, out=seg_base)
    return total - seg_base


@dataclass(frozen=True)
class BlockScanCost:
    """Per-block dynamic cost of one shared-memory scan of ``block_size``."""

    instructions_per_thread: int
    barriers: int
    shared_mem_bytes: int


def blelloch_cost(block_size: int, *, elem_bytes: int = 4) -> BlockScanCost:
    """Cost of a CUB-style block scan (warp shuffles + smem partials).

    CUB's BlockScan does a register-level warp scan (log2(32) = 5 shuffle
    steps, no memory traffic), writes one partial per warp to shared
    memory, scans the partials with the first warp, and broadcasts — two
    barriers total, ~3 instructions per shuffle step plus fixed overhead.
    A naive 2·log2(n)-sweep Blelloch over shared memory would be several
    times costlier; CUB is what the paper links against.
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    warp_levels = 5  # log2(warp_size)
    return BlockScanCost(
        instructions_per_thread=3 * warp_levels + 8,
        barriers=2,
        shared_mem_bytes=max(1, block_size // 32) * elem_bytes,
    )


def hillis_steele_cost(block_size: int, *, elem_bytes: int = 4) -> BlockScanCost:
    """Cost of a step-efficient (Hillis–Steele) block scan."""
    if block_size < 1:
        raise ValueError("block_size must be positive")
    levels = max(1, math.ceil(math.log2(block_size)))
    return BlockScanCost(
        instructions_per_thread=3 * levels,
        barriers=levels,
        shared_mem_bytes=2 * block_size * elem_bytes,  # double buffer
    )
