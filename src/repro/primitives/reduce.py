"""Parallel reductions with block-tree cost descriptors."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["BlockReduceCost", "block_reduce_cost", "device_reduce", "count_nonzero"]


@dataclass(frozen=True)
class BlockReduceCost:
    """Per-block dynamic cost of one shared-memory tree reduction."""

    instructions_per_thread: int
    barriers: int
    shared_mem_bytes: int


def block_reduce_cost(block_size: int, *, elem_bytes: int = 4) -> BlockReduceCost:
    """Tree reduction: log2(n) halving steps, barrier between each."""
    if block_size < 1:
        raise ValueError("block_size must be positive")
    levels = max(1, math.ceil(math.log2(block_size)))
    return BlockReduceCost(
        instructions_per_thread=2 * levels,
        barriers=levels,
        shared_mem_bytes=block_size * elem_bytes,
    )


def device_reduce(values: np.ndarray, op: str = "sum"):
    """Functional device-wide reduction (sum/max/min/any)."""
    values = np.asarray(values)
    if op == "sum":
        return values.sum()
    if op == "max":
        return values.max()
    if op == "min":
        return values.min()
    if op == "any":
        return bool(values.any())
    raise ValueError(f"unknown reduction op {op!r}")


def count_nonzero(values: np.ndarray) -> int:
    """Device-wide population count (used for worklist sizes)."""
    return int(np.count_nonzero(np.asarray(values)))
