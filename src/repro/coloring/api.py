"""The public entry point: ``color_graph(graph, method=...)``.

Wraps the seven evaluated schemes (plus the background algorithms) behind
one dispatcher so examples, benchmarks and downstream users need a single
import.  Method names match the paper's legend:

========================  ====================================================
``sequential``            Alg. 1, greedy on the simulated Xeon (the baseline)
``3step-gm``              Grosset et al.'s partition + CPU-resolution GPU code
``topo-base``             Alg. 4 on the simulated K20c
``topo-ldg``              Alg. 4 + read-only-cache loads for R/C
``data-base``             Alg. 5 + prefix-sum worklist (atomics reduced)
``data-ldg``              Alg. 5 + prefix sum + __ldg
``csrcolor``              cuSPARSE's multi-hash MIS
``gm``                    Alg. 2 (functional reference, unpriced)
``jp`` / ``jp-lf``        Alg. 3 / PLF variant (functional, unpriced)
``balanced-greedy``       least-used-color greedy (balance extension)
========================  ====================================================
"""

from __future__ import annotations

from typing import Callable

from ..engine.runner import SchemeRecipe
from ..graph.csr import CSRGraph
from ..obs.observe import reject_recorder_keyword, resolve_observe
from .registry import (
    METHOD_ALIASES,
    SCHEMES,
    resolve_method,
    unknown_method_error,
    validate_options,
)
from .balance import balanced_greedy
from .base import ColoringResult
from .csrcolor import CsrColorRecipe, color_csrcolor
from .datadriven import DataDrivenRecipe, color_data_driven
from .gm import color_gm
from .grosset import ThreeStepGMRecipe, color_three_step_gm
from .jp import color_jp, color_jp_lf
from .sequential import greedy_sequential
from .topo import TopologyRecipe, color_topology_driven

__all__ = [
    "color_graph",
    "make_recipe",
    "METHODS",
    "ENGINE_RECIPES",
    "EVALUATED_SCHEMES",
    "SCHEMES",
]

#: The seven schemes of the paper's evaluation (Section IV), in figure order.
EVALUATED_SCHEMES: tuple[str, ...] = (
    "sequential",
    "3step-gm",
    "topo-base",
    "topo-ldg",
    "data-base",
    "data-ldg",
    "csrcolor",
)

METHODS: dict[str, Callable[..., ColoringResult]] = {
    "sequential": greedy_sequential,
    "3step-gm": color_three_step_gm,
    "topo-base": lambda g, **kw: color_topology_driven(g, use_ldg=False, **kw),
    "topo-ldg": lambda g, **kw: color_topology_driven(g, use_ldg=True, **kw),
    "data-base": lambda g, **kw: color_data_driven(g, use_ldg=False, **kw),
    "data-ldg": lambda g, **kw: color_data_driven(g, use_ldg=True, **kw),
    "csrcolor": color_csrcolor,
    "gm": color_gm,
    "jp": color_jp,
    "jp-gpu": lambda g, **kw: __import__("repro.coloring.jp", fromlist=["color_jp_gpu"]).color_jp_gpu(g, **kw),
    "jp-lf": color_jp_lf,
    "balanced-greedy": balanced_greedy,
    "dsatur": lambda g, **kw: __import__("repro.coloring.dsatur", fromlist=["dsatur"]).dsatur(g, **kw),
    "iterated-greedy": lambda g, **kw: __import__("repro.coloring.iterated", fromlist=["iterated_greedy"]).iterated_greedy(g, **kw),
    # Extensions (not part of the paper's seven evaluated schemes):
    # warp-centric load balancing for skewed graphs (the paper's
    # future-work direction).
    "data-lb": lambda g, **kw: color_data_driven(
        g, use_ldg=False, load_balance=True, **kw
    ),
    "data-ldg-lb": lambda g, **kw: color_data_driven(
        g, use_ldg=True, load_balance=True, **kw
    ),
}

#: Device-backed schemes expressed as engine recipes — the methods an
#: :class:`~repro.engine.context.ExecutionContext` (and its batched
#: ``color_many``) can run with cached uploads and pooled buffers.
ENGINE_RECIPES: dict[str, Callable[..., SchemeRecipe]] = {
    "3step-gm": ThreeStepGMRecipe,
    "topo-base": lambda **kw: TopologyRecipe(use_ldg=False, **kw),
    "topo-ldg": lambda **kw: TopologyRecipe(use_ldg=True, **kw),
    "data-base": lambda **kw: DataDrivenRecipe(use_ldg=False, **kw),
    "data-ldg": lambda **kw: DataDrivenRecipe(use_ldg=True, **kw),
    "data-lb": lambda **kw: DataDrivenRecipe(use_ldg=False, load_balance=True, **kw),
    "data-ldg-lb": lambda **kw: DataDrivenRecipe(use_ldg=True, load_balance=True, **kw),
    "csrcolor": CsrColorRecipe,
}


def make_recipe(
    method: str, *, entry_point: str | None = None, **kwargs
) -> SchemeRecipe:
    """Build the engine recipe for a device-backed method name.

    ``entry_point`` names the calling surface in validation errors
    (``"color_graph"``, ``"ExecutionContext.run"``, the CLI, ...).
    """
    method = METHOD_ALIASES.get(method, method)
    if method not in ENGINE_RECIPES:
        where = f"{entry_point}(): " if entry_point else ""
        raise ValueError(
            f"{where}method {method!r} is not a device scheme recipe; "
            f"choose from {sorted(ENGINE_RECIPES)}"
        )
    validate_options(method, kwargs, entry_point=entry_point)
    return ENGINE_RECIPES[method](**kwargs)


def color_graph(
    graph: CSRGraph,
    method: str = "data-ldg",
    *,
    validate: bool = True,
    backend=None,
    backend_opts=None,
    context=None,
    config=None,
    observe=None,
    cache=None,
    mex=None,
    faults=None,
    health=None,
    deadline_ms=None,
    **kwargs,
) -> ColoringResult:
    """Color ``graph`` with the named scheme.

    Parameters
    ----------
    graph:
        A symmetric simple :class:`~repro.graph.csr.CSRGraph` (use the
        builders in :mod:`repro.graph` — they normalize input for you).
    method:
        One of :data:`METHODS`; the paper's best performer (``data-ldg``)
        is the default.
    validate:
        Verify properness/completeness before returning (cheap; disable
        only in tight benchmark loops that verify separately).
    backend:
        Execution substrate for device schemes: ``"gpusim"`` (default),
        ``"cpusim"``, ``"compiled"`` (gpusim with JIT-compiled host
        kernels — byte-identical results, faster wall-clock), or a
        backend/device instance.  Host-side methods (``sequential``,
        ``jp``, ...) reject it.
    backend_opts:
        Constructor keywords for a string ``backend=`` spec, e.g.
        ``{"jit": "cc"}`` or ``{"cache_model": "hit_rate"}``.
    context:
        A shared :class:`~repro.engine.context.ExecutionContext` — reuses
        cached graph uploads and pooled buffers across calls.
    config:
        A :class:`~repro.engine.config.RunConfig` (or mapping of its
        fields) bundling the execution options; fields this entry point
        supports merge with the explicit keywords (setting one both ways
        is an error).
    observe:
        The unified observation surface (:mod:`repro.obs`): ``None``
        (default, zero overhead), ``"trace"`` / ``"profile"`` /
        ``"rounds"``, a :class:`~repro.obs.tracer.Tracer`, a
        :class:`~repro.metrics.recorder.Recorder`, or an
        :class:`~repro.obs.observe.Observation`.  The resolved bundle is
        attached to ``result.observation``.
    cache:
        A content-addressed result cache (see :mod:`repro.parallel.cache`):
        ``None`` (default, no caching), ``"memory"``, a directory path, or
        a :class:`~repro.parallel.ResultCache`.  A hit returns the stored
        result without entering the round loop (``result.cache_hit`` is
        True); a miss runs normally and stores the result.
    mex:
        Forbidden-color kernel strategy for this run: ``'bitmask'``
        (default behavior), ``'bitmask:N'`` to change the word-count
        fallback limit, or ``'sort'`` for the historical sort-based
        kernel.  Results are byte-identical across strategies — only
        wall-clock speed differs — so ``mex`` never enters cache keys.
    faults:
        Fault-injection plan (see :mod:`repro.faults`): a
        :class:`~repro.faults.FaultPlan`, a plan spec string
        (``'seed=7; kernel-transient: kernel=topo-color-0'``), or a ready
        :class:`~repro.faults.Robustness` bundle.  Device schemes route
        through an ephemeral engine context so injection sites, guard
        rails and the rerun degradation chain all apply; host schemes run
        with the bundle ambient (degradations recorded, audit via
        ``validate``).  The run's report lands on ``result.robustness``.
    health:
        Guard-rail policy: ``'strict'``, ``'off'``, or a
        :class:`~repro.faults.HealthPolicy` — convergence watchdog,
        per-round invariants, end-of-run audit, degradation budget.
        A cache hit never enters the round loop, so neither layer fires
        on hits.  Not combinable with ``context=`` (configure the context
        instead).
    deadline_ms:
        End-to-end budget for this run (or a ready
        :class:`~repro.resilience.RunControl`).  Device schemes check it
        cooperatively at every round boundary and raise the structured
        :class:`~repro.resilience.DeadlineExceeded`; host schemes check
        once at dispatch.  Not combinable with ``context=`` (pass
        ``deadline_ms`` to the :class:`ExecutionContext` instead).
    **kwargs:
        Scheme-specific options, e.g. ``block_size=256``,
        ``worklist_strategy='atomic'``, ``num_hashes=4``,
        ``ordering='smallest-last'``.  Validated against the scheme
        registry (:data:`~repro.coloring.registry.SCHEMES`): misspelled
        or unknown options raise instead of being silently ignored.

    Returns
    -------
    ColoringResult
        Colors, color count, iteration count and simulated timing.
    """
    method = resolve_method(method, METHODS, entry_point="color_graph")
    reject_recorder_keyword("color_graph", kwargs)
    if config is not None:
        from ..engine.config import normalize_config

        merged = normalize_config(
            "color_graph",
            config,
            {
                "backend": backend, "backend_opts": backend_opts,
                "cache": cache, "mex": mex, "faults": faults,
                "health": health, "observe": observe,
                "deadline_ms": deadline_ms,
            },
        )
        backend, backend_opts = merged["backend"], merged["backend_opts"]
        cache, mex = merged["cache"], merged["mex"]
        faults, health = merged["faults"], merged["health"]
        observe = merged["observe"]
        deadline_ms = merged["deadline_ms"]
    if backend_opts and not isinstance(backend, (str, type(None))):
        raise TypeError(
            "backend_opts= configures a string backend= spec; pass a "
            "ready-constructed instance without opts instead"
        )
    validate_options(method, kwargs, entry_point="color_graph")
    if context is not None and observe is not None:
        raise ValueError(
            "pass observe= to the ExecutionContext, not alongside context="
        )
    if context is not None and (faults is not None or health is not None):
        raise ValueError(
            "pass faults=/health= to the ExecutionContext, not alongside "
            "context="
        )
    if context is not None and deadline_ms is not None:
        raise ValueError(
            "pass deadline_ms= to the ExecutionContext, not alongside "
            "context="
        )
    if context is not None and backend_opts:
        raise ValueError(
            "pass backend_opts= to the ExecutionContext, not alongside "
            "context="
        )
    from ..faults import resolve_robustness
    from ..resilience.deadline import resolve_control

    robustness = resolve_robustness(faults, health)
    control = resolve_control(deadline_ms)
    if backend is not None and method not in ENGINE_RECIPES:
        raise ValueError(
            f"method {method!r} runs on the host and takes no backend; "
            f"backends apply to {sorted(ENGINE_RECIPES)}"
        )
    observation = resolve_observe(observe)

    cache_obj = cache_key = None
    if cache is not None:
        from ..parallel.cache import job_cache_key, resolve_cache

        cache_obj = resolve_cache(cache)
        spec = backend if backend is not None else kwargs.get("device")
        cache_key = job_cache_key(graph, method, kwargs, spec, backend_opts)
        hit = cache_obj.get(cache_key)
        # (`or` would drop an empty tracer: Tracer defines __len__.)
        tracer = observation.tracer
        if tracer is None and context is not None:
            tracer = context.tracer
        if tracer is not None:
            tracer.event(
                f"result-cache:{method}:{getattr(graph, 'name', '?')}",
                "cache", hit=int(hit is not None), miss=int(hit is None),
            )
        if hit is not None:
            if observation.active:
                hit.extra.setdefault("observation", observation)
            if validate:
                hit.validate(graph)
            return hit

    from contextlib import nullcontext

    from .kernels import mex_strategy

    with mex_strategy(mex) if mex is not None else nullcontext():
        if context is not None:
            result = context.run(graph, method, validate=validate, **kwargs)
        elif (
            observation.active or robustness is not None
            or control is not None
        ) and method in ENGINE_RECIPES:
            # Observed, fault-guarded or deadline-bound device runs route
            # through an ephemeral context so the tracer sees uploads,
            # kernels and transfers alike — and so the robustness layer
            # gets the full engine treatment (injection sites, guards,
            # rerun chain) and the deadline its round-boundary checks.
            from ..engine.context import ExecutionContext

            spec = backend if backend is not None else kwargs.pop("device", None)
            ctx = ExecutionContext(
                backend=spec, observe=observation, faults=robustness,
                deadline_ms=control, **dict(backend_opts or {}),
            )
            result = ctx.run(graph, method, validate=validate, **kwargs)
        else:
            if control is not None:
                # Host schemes have no round loop; the budget is checked
                # once at dispatch (an already-expired deadline still
                # fails structurally instead of running to completion).
                control.check("dispatch")
            if backend_opts:
                from ..engine.backend import resolve_backend

                kwargs["backend"] = resolve_backend(
                    backend, **dict(backend_opts)
                )
            elif backend is not None:
                kwargs["backend"] = backend
            if robustness is not None:
                # Host schemes have no round loop to guard, but the
                # ambient bundle still collects kernel degradations, and
                # ``validate`` is the audit.
                from ..faults import runtime as fault_runtime

                with fault_runtime.activate(robustness):
                    result = METHODS[method](graph, **kwargs)
            else:
                result = METHODS[method](graph, **kwargs)
            if observation.tracer is not None:
                _trace_host_run(observation.tracer, graph, result)
            if observation.active:
                result.extra.setdefault("observation", observation)
            if validate:
                result.validate(graph)
            if robustness is not None:
                result.extra["robustness"] = robustness.report()
    if cache_obj is not None:
        cache_obj.put(cache_key, result)
    return result


def _trace_host_run(tracer, graph, result: ColoringResult) -> None:
    """Synthesize a run span for a host-side scheme from its priced result.

    Host methods never touch a backend, so no kernel/transfer events flow
    into the tracer; the result's simulated totals still deserve a place
    on the timeline so mixed traces (e.g. ``compare``) stay complete.
    """
    span = tracer.begin(
        f"{result.scheme}:{getattr(graph, 'name', '?')}",
        "run",
        scheme=result.scheme,
        graph=getattr(graph, "name", "?"),
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        backend="host",
    )
    if result.total_time_us:
        tracer.event(
            "host-compute", "cpu", duration_us=result.total_time_us,
        )
    tracer.end(
        span,
        iterations=result.iterations,
        colors=result.num_colors,
        cpu_time_us=result.cpu_time_us,
    )
