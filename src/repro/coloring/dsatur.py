"""DSATUR (Brélaz 1979) and an exact branch-and-bound chromatic solver.

DSATUR is the canonical sequential quality heuristic: always color the
vertex with the highest *saturation* (distinct neighbor colors), breaking
ties by degree.  It is exactly optimal on bipartite graphs and usually
beats first-fit by a color or two — a stronger quality bar than Alg. 1
for judging the parallel schemes.

:func:`chromatic_number` turns DSATUR into an exact solver by
branch-and-bound over the same vertex order (the standard DSATUR-based
exact algorithm): at each step the chosen vertex tries every feasible
existing color plus one new color, pruning when the palette reaches the
incumbent.  Exponential worst case — intended for the small oracle graphs
the test suite checks quality against, guarded by a node budget.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringResult

__all__ = ["dsatur", "chromatic_number", "max_clique_lower_bound"]


def dsatur(graph: CSRGraph) -> ColoringResult:
    """Brélaz's saturation-degree greedy coloring."""
    n = graph.num_vertices
    colors = np.zeros(n, dtype=COLOR_DTYPE)
    if n == 0:
        return ColoringResult(colors=colors, scheme="dsatur", iterations=1)
    R, C = graph.row_offsets, graph.col_indices
    degs = graph.degrees.astype(np.int64)
    # neighbor_colors[v] tracks the distinct colors adjacent to v.
    neighbor_colors: list[set[int]] = [set() for _ in range(n)]
    saturation = np.zeros(n, dtype=np.int64)
    uncolored = np.ones(n, dtype=bool)
    for _ in range(n):
        # Highest saturation, ties by degree, then by id (deterministic).
        sat_view = np.where(uncolored, saturation, -1)
        best_sat = sat_view.max()
        cand = np.flatnonzero(sat_view == best_sat)
        v = int(cand[np.argmax(degs[cand])])
        used = neighbor_colors[v]
        c = 1
        while c in used:
            c += 1
        colors[v] = c
        uncolored[v] = False
        for w in C[R[v] : R[v + 1]]:
            w = int(w)
            if uncolored[w] and c not in neighbor_colors[w]:
                neighbor_colors[w].add(c)
                saturation[w] += 1
    return ColoringResult(colors=colors, scheme="dsatur", iterations=1)


def max_clique_lower_bound(graph: CSRGraph, *, tries: int = 32, seed: int = 0) -> int:
    """Greedy clique heuristic: a lower bound on the chromatic number.

    Repeatedly grows a clique from a random high-degree seed; returns the
    largest found.  Not exact (max clique is NP-hard) but a valid bound.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    if graph.num_edges == 0:
        return 1
    rng = np.random.default_rng(seed)
    adj_sets = [frozenset(graph.neighbors(v).tolist()) for v in range(n)]
    order_by_degree = np.argsort(-graph.degrees)
    best = 1
    for t in range(tries):
        seed_v = int(order_by_degree[t % n] if t < n else rng.integers(0, n))
        clique = [seed_v]
        cand = set(adj_sets[seed_v])
        while cand:
            # extend by the candidate with most connections into cand
            v = max(cand, key=lambda x: len(cand & adj_sets[x]))
            clique.append(v)
            cand &= adj_sets[v]
        best = max(best, len(clique))
    return best


class _BudgetExceeded(Exception):
    pass


def chromatic_number(
    graph: CSRGraph, *, node_budget: int = 200_000
) -> int:
    """Exact chromatic number by DSATUR branch-and-bound.

    Raises ``RuntimeError`` if the search tree exceeds ``node_budget``
    nodes — this is an oracle for small graphs, not a production solver.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    if graph.num_edges == 0:
        return 1
    adj: list[np.ndarray] = [graph.neighbors(v).astype(np.int64) for v in range(n)]
    colors = np.zeros(n, dtype=np.int64)
    lower = max_clique_lower_bound(graph)
    upper = int(dsatur(graph).num_colors)
    if lower == upper:
        return lower
    best = upper
    nodes = 0

    def select_vertex() -> int:
        # DSATUR selection among uncolored vertices.
        best_v, best_key = -1, (-1, -1)
        for v in range(n):
            if colors[v]:
                continue
            sat = len({int(colors[w]) for w in adj[v] if colors[w]})
            key = (sat, int(adj[v].size))
            if key > best_key:
                best_key, best_v = key, v
        return best_v

    def search(num_used: int, colored: int) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > node_budget:
            raise _BudgetExceeded
        if num_used >= best:
            return
        if colored == n:
            best = num_used
            return
        v = select_vertex()
        forbidden = {int(colors[w]) for w in adj[v] if colors[w]}
        for c in range(1, min(num_used + 1, best - 1) + 1):
            if c in forbidden:
                continue
            colors[v] = c
            search(max(num_used, c), colored + 1)
            colors[v] = 0
            if best == lower:
                return  # already optimal

    try:
        search(0, 0)
    except _BudgetExceeded as exc:
        raise RuntimeError(
            f"chromatic_number: node budget {node_budget} exceeded "
            f"(bounds were [{lower}, {best}])"
        ) from exc
    return best
