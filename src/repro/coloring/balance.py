"""Color-balancing heuristics (extension; Gjertsen et al.'s PDR/PLF family).

When colors schedule parallel work, a giant color class is a straggler.
Two balancers are provided:

* :func:`balanced_greedy` — color with *least-used permissible color*
  instead of smallest (PLF-style): balances on the fly, may use a few more
  colors than plain greedy.
* :func:`rebalance_colors` — post-pass (PDR-style): vertices in
  over-populated classes move to the smallest-population permissible class,
  never increasing the color count.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringResult

__all__ = ["balanced_greedy", "rebalance_colors"]


def balanced_greedy(graph: CSRGraph, *, seed: int = 0) -> ColoringResult:
    """Greedy coloring choosing the least-populated permissible color."""
    n = graph.num_vertices
    colors = np.zeros(n, dtype=COLOR_DTYPE)
    max_colors = graph.max_degree + 2
    class_size = np.zeros(max_colors + 1, dtype=np.int64)
    class_size[0] = np.iinfo(np.int64).max  # color 0 is never chosen
    R, C = graph.row_offsets, graph.col_indices
    forbidden = np.zeros(max_colors + 1, dtype=np.int64)
    forbidden[:] = -1
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    for v in order:
        v = int(v)
        nbr = colors[C[R[v] : R[v + 1]]]
        forbidden[nbr] = v
        # Permissible colors among 1..deg+1; pick the emptiest.
        limit = (R[v + 1] - R[v]) + 2
        cand = np.flatnonzero(forbidden[1:limit] != v) + 1
        c = int(cand[np.argmin(class_size[cand])])
        colors[v] = c
        class_size[c] += 1
    return ColoringResult(colors=colors, scheme="balanced-greedy", iterations=1)


def rebalance_colors(
    graph: CSRGraph, colors: np.ndarray, *, max_passes: int = 3
) -> np.ndarray:
    """Shrink over-populated color classes without adding colors.

    Each pass visits vertices of classes larger than the mean and moves
    them to the least-populated permissible existing class.  Monotone:
    a move strictly improves the size spread, so passes terminate.
    """
    colors = np.array(colors, dtype=COLOR_DTYPE, copy=True)
    if colors.size == 0:
        return colors
    num_colors = int(colors.max())
    if num_colors <= 1:
        return colors
    R, C = graph.row_offsets, graph.col_indices
    for _ in range(max_passes):
        sizes = np.bincount(colors, minlength=num_colors + 1).astype(np.int64)
        mean = sizes[1:].mean()
        heavy = np.flatnonzero(sizes > mean)
        heavy_vertices = np.flatnonzero(np.isin(colors, heavy))
        moved = 0
        for v in heavy_vertices:
            v = int(v)
            cur = colors[v]
            nbr = set(colors[C[R[v] : R[v + 1]]].tolist())
            best, best_size = cur, sizes[cur]
            for c in range(1, num_colors + 1):
                if c != cur and c not in nbr and sizes[c] + 1 < best_size:
                    best, best_size = c, sizes[c]
            if best != cur:
                sizes[cur] -= 1
                sizes[best] += 1
                colors[v] = best
                moved += 1
        if moved == 0:
            break
    return colors
