"""Iterated greedy recoloring (Culberson) — quality extension.

Culberson's observation: re-running greedy with any order in which each
existing color class appears as a contiguous block can never increase the
color count, and reordering the classes (largest-first, reverse, random)
often decreases it.  A few iterations typically shave 1-3 colors off a
first-fit coloring at sequential-greedy cost per pass — a cheap quality
booster for any scheme in this library, including the GPU ones.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringResult, color_class_sizes
from .sequential import greedy_colors_only

__all__ = ["iterated_greedy"]

_CLASS_ORDERS = ("reverse", "largest-first", "smallest-first", "random")


def _class_block_order(
    colors: np.ndarray, strategy: str, rng: np.random.Generator
) -> np.ndarray:
    """Vertex order grouping each color class contiguously."""
    num_colors = int(colors.max())
    sizes = color_class_sizes(colors)
    classes = np.arange(1, num_colors + 1)
    if strategy == "reverse":
        class_order = classes[::-1]
    elif strategy == "largest-first":
        class_order = classes[np.argsort(-sizes, kind="stable")]
    elif strategy == "smallest-first":
        class_order = classes[np.argsort(sizes, kind="stable")]
    elif strategy == "random":
        class_order = rng.permutation(classes)
    else:
        raise ValueError(f"unknown class order {strategy!r}")
    rank = np.empty(num_colors + 1, dtype=np.int64)
    rank[class_order] = np.arange(num_colors)
    return np.argsort(rank[colors], kind="stable").astype(np.int64)


def iterated_greedy(
    graph: CSRGraph,
    *,
    initial: np.ndarray | None = None,
    iterations: int = 8,
    seed: int = 0,
) -> ColoringResult:
    """Refine a coloring by repeated class-blocked greedy passes.

    Parameters
    ----------
    initial:
        Starting coloring (defaults to first-fit greedy).  Any proper
        coloring works — feed a GPU scheme's result to polish it.
    iterations:
        Recoloring passes; strategies rotate reverse -> largest ->
        smallest -> random.

    The color count is non-increasing across passes (Culberson's
    invariant), so the result is always at least as good as the input.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    rng = np.random.default_rng(seed)
    colors = (
        np.array(initial, dtype=COLOR_DTYPE, copy=True)
        if initial is not None
        else greedy_colors_only(graph)
    )
    if colors.shape != (graph.num_vertices,):
        raise ValueError("initial coloring must have one entry per vertex")
    history = [int(colors.max()) if colors.size else 0]
    for it in range(iterations):
        strategy = _CLASS_ORDERS[it % len(_CLASS_ORDERS)]
        order = _class_block_order(colors, strategy, rng)
        colors = greedy_colors_only(graph, order)
        history.append(int(colors.max()))
        if history[-1] <= 2:  # cannot do better than bipartite
            break
    return ColoringResult(
        colors=colors,
        scheme="iterated-greedy",
        iterations=len(history) - 1,
        extra={"color_history": history},
    )
