"""Shared kernel machinery for the GPU coloring schemes.

Two halves:

* **Functional** — vectorized NumPy implementations of the two
  bulk-synchronous steps every speculative-greedy variant runs:
  :func:`speculative_color_step` (Alg. 4/5 lines 4-10: each active vertex
  takes the smallest color not used by any neighbor, reading the *round
  snapshot* of the color array) and :func:`detect_conflicts`
  (lines 12-18: un-color / re-enqueue the smaller endpoint of every
  monochromatic edge).
* **Trace charging** — :func:`charge_color_kernel` /
  :func:`charge_conflict_kernel` record what the SIMT hardware does for
  those steps: the ``R``/``C``/``color`` load streams (with or without
  ``__ldg``), the per-edge loop instructions, and the result stores.

Snapshot semantics note: real CUDA execution interleaves reads and writes
within a kernel, so some conflicts the snapshot model predicts are resolved
"for free" on hardware.  Snapshot is the worst case and the standard BSP
reading of the pseudocode; iteration counts are within one round of
hardware behavior either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.device import DeviceArray
from ..gpusim.trace import TraceBuilder
from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE

__all__ = [
    "GraphBuffers",
    "upload_graph",
    "expand_segments",
    "min_excluded_colors",
    "speculative_color_step",
    "speculative_color_waved",
    "resident_thread_capacity",
    "detect_conflicts",
    "charge_color_kernel",
    "charge_conflict_kernel",
    "charge_color_kernel_lb",
    "warp_lb_layout",
    "WarpLBLayout",
    "race_window_threads",
]


def resident_thread_capacity(device, launch) -> int:
    """Concurrent-thread capacity of the device for one launch config
    (SMs x occupancy-limited resident blocks x block size)."""
    from ..gpusim.occupancy import compute_occupancy

    occ = compute_occupancy(device.config, launch)
    return device.config.num_sms * occ.blocks_per_sm * launch.block_size


def race_window_threads(device, launch) -> int:
    """How many threads truly race (read each other's stale state).

    Races are modeled at *warp* granularity: a warp's 32 lanes execute in
    SIMT lockstep, so every lane's neighbor-color gather completes before
    any lane's color store — two adjacent vertices in one warp always read
    each other's stale state.  Threads in different warps (even of the
    same block) are skewed by scheduling quanta and divergent memory
    stalls measured in hundreds of cycles, so cross-warp read-write
    overlap is rare.  Warp granularity reproduces the observed behavior of
    speculative GPU coloring: conflicts are rare on randomly-ordered
    graphs but substantial on meshes whose natural vertex order places
    path neighbors in the same warp — the regime where the paper's own
    Fig. 7 shows topology-driven losing to the worklist-based scheme.
    """
    return device.config.warp_size

# Dynamic-instruction estimates (per the CUDA kernels these model):
# neighbor-loop body = index arithmetic + two loads' address math + mask
# stamp; vertex overhead = bounds loads, mask scan, color store, flags.
_INSTR_PER_EDGE = 6
_INSTR_PER_VERTEX = 14
_INSTR_IDLE_THREAD = 3  # colored check + exit


@dataclass(frozen=True)
class GraphBuffers:
    """Device-resident CSR arrays plus the color/state arrays."""

    R: DeviceArray
    C: DeviceArray
    colors: DeviceArray
    aux: DeviceArray  # colored flags (topo) or worklist shadow (data-driven)


def upload_graph(device, graph: CSRGraph, *, charge_transfer: bool = False) -> GraphBuffers:
    """Place the CSR arrays and color state on the device.

    The initial upload is excluded from timing by default, matching the
    paper ("the I/O part is excluded from the evaluation"); 3-step GM's
    *intermediate* transfers are charged explicitly by that scheme.
    """
    if charge_transfer:
        R = device.upload(graph.row_offsets.astype(np.int32), name="R")
        C = device.upload(graph.col_indices, name="C")
    else:
        R = device.register(graph.row_offsets.astype(np.int32), name="R")
        C = device.register(graph.col_indices, name="C")
    colors = device.alloc(graph.num_vertices, COLOR_DTYPE, name="colors", fill=0)
    aux = device.alloc(graph.num_vertices, np.int8, name="aux", fill=0)
    return GraphBuffers(R=R, C=C, colors=colors, aux=aux)


def expand_segments(graph: CSRGraph, vertex_ids: np.ndarray):
    """Flatten the adjacency lists of ``vertex_ids``.

    Returns ``(seg, step, edge_idx)``: for every adjacency entry of every
    listed vertex, the position of its owner within ``vertex_ids``, its
    trip index inside the owner's neighbor loop, and its index into ``C``.
    All downstream gather streams derive from these three arrays.
    """
    vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
    lens = graph.degrees[vertex_ids].astype(np.int64)
    starts = graph.row_offsets[vertex_ids].astype(np.int64)
    total = int(lens.sum())
    if total == 0:
        z = np.empty(0, dtype=np.int64)
        return z, z, z
    seg = np.repeat(np.arange(vertex_ids.size, dtype=np.int64), lens)
    step = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(lens) - lens, lens)
    edge_idx = starts[seg] + step
    return seg, step, edge_idx


def min_excluded_colors(
    seg_ids: np.ndarray, nbr_colors: np.ndarray, num_segments: int
) -> np.ndarray:
    """Smallest positive color absent from each segment's neighbor colors.

    Exact vectorized *mex*: after per-segment dedup and sort, an entry with
    color ``rank+1`` proves colors ``1..rank+1`` are all present (the
    entries below it are distinct positive integers smaller than it), so
    ``mex = (length of the consecutive prefix) + 1`` — one bincount.
    """
    if num_segments == 0:
        return np.zeros(0, dtype=COLOR_DTYPE)
    mask = nbr_colors > 0
    s = seg_ids[mask]
    c = nbr_colors[mask].astype(np.int64)
    if s.size == 0:
        return np.ones(num_segments, dtype=COLOR_DTYPE)
    base = int(c.max()) + 2
    key = np.unique(s * base + c)
    s2 = key // base
    c2 = key % base
    seg_start = np.searchsorted(s2, np.arange(num_segments, dtype=np.int64))
    rank = np.arange(key.size, dtype=np.int64) - seg_start[s2]
    ok = c2 == rank + 1
    prefix = np.bincount(s2[ok], minlength=num_segments)
    return (prefix + 1).astype(COLOR_DTYPE)


def speculative_color_step(
    graph: CSRGraph, colors: np.ndarray, active_ids: np.ndarray
) -> np.ndarray:
    """One parallel coloring round: colors for ``active_ids`` (snapshot read).

    Returns the new color per active vertex; the caller commits them after
    (conceptually) the kernel-wide write, i.e. ``colors`` is not mutated.
    This is the worst-case full-snapshot semantics; the schemes use
    :func:`speculative_color_waved`, which models wave-granular visibility.
    """
    active_ids = np.asarray(active_ids, dtype=np.int64)
    seg, _, edge_idx = expand_segments(graph, active_ids)
    nbr_colors = colors[graph.col_indices[edge_idx]]
    return min_excluded_colors(seg, nbr_colors, active_ids.size)


def speculative_color_waved(
    graph: CSRGraph,
    colors: np.ndarray,
    active_ids: np.ndarray,
    resident_threads: int,
    thread_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Coloring round with wave-granular write visibility.

    A kernel's blocks execute in occupancy-sized *waves*: a wave's threads
    race with each other (they read the wave-entry snapshot), but a later
    wave sees everything earlier waves committed.  Full-snapshot semantics
    would predict far more conflicts than hardware exhibits — two vertices
    can only race if their kernel executions actually overlap in time.

    ``resident_threads`` is the device's concurrent-thread capacity for
    this launch (SMs x resident blocks x block size).  ``thread_ids`` maps
    each active vertex to its grid thread (defaults to its position, the
    data-driven compact mapping; topology-driven passes the vertex ids so
    waves cover thread *ranges* including idle lanes).  Mutates ``colors``
    for the processed vertices and returns their new values.
    """
    active_ids = np.asarray(active_ids, dtype=np.int64)
    if resident_threads < 1:
        raise ValueError("resident_threads must be positive")
    out = np.empty(active_ids.size, dtype=COLOR_DTYPE)
    if thread_ids is None:
        bounds = list(range(0, active_ids.size, resident_threads)) + [active_ids.size]
    else:
        thread_ids = np.asarray(thread_ids, dtype=np.int64)
        if np.any(np.diff(thread_ids) < 0):
            raise ValueError("thread_ids must be sorted")
        last_wave = int(thread_ids[-1]) // resident_threads if thread_ids.size else 0
        edges = np.arange(1, last_wave + 1, dtype=np.int64) * resident_threads
        bounds = [0, *np.searchsorted(thread_ids, edges).tolist(), active_ids.size]
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi <= lo:
            continue
        chunk = active_ids[lo:hi]
        fresh = speculative_color_step(graph, colors, chunk)
        colors[chunk] = fresh
        out[lo:hi] = fresh
    return out


def detect_conflicts(
    graph: CSRGraph, colors: np.ndarray, scope_ids: np.ndarray
) -> np.ndarray:
    """Vertices in ``scope_ids`` that lose a color conflict.

    Implements the pseudocode's tie-break: of a monochromatic edge
    ``(v, w)``, the *smaller id* is un-colored (``v < w`` keeps ``w``).
    Returns the conflicted subset of ``scope_ids`` (original ids).
    """
    scope_ids = np.asarray(scope_ids, dtype=np.int64)
    seg, _, edge_idx = expand_segments(graph, scope_ids)
    if edge_idx.size == 0:
        return np.empty(0, dtype=np.int64)
    v = scope_ids[seg]
    w = graph.col_indices[edge_idx].astype(np.int64)
    clash = (colors[v] == colors[w]) & (colors[v] > 0) & (v < w)
    loser = np.zeros(scope_ids.size, dtype=bool)
    loser[seg[clash]] = True
    return scope_ids[loser]


# ----------------------------------------------------------------------
# Trace charging
# ----------------------------------------------------------------------
def charge_color_kernel(
    builder: TraceBuilder,
    graph: CSRGraph,
    bufs: GraphBuffers,
    active_ids: np.ndarray,
    thread_ids: np.ndarray,
    *,
    use_ldg: bool,
    idle_threads: int = 0,
) -> None:
    """Record the memory/instruction behavior of one coloring kernel.

    ``active_ids``/``thread_ids`` are parallel: the vertex each working
    thread owns.  Topology-driven passes ``thread_ids == active_ids`` (one
    thread per vertex, most idle); data-driven passes compact thread ids.
    """
    active_ids = np.asarray(active_ids, dtype=np.int64)
    thread_ids = np.asarray(thread_ids, dtype=np.int64)
    seg, step, edge_idx = expand_segments(graph, active_ids)
    t_of_edge = thread_ids[seg]

    # Row bounds: R[v] and R[v+1] — one coalesced-ish load pair per thread.
    builder.load(thread_ids, bufs.R.addr(active_ids), ldg=use_ldg)
    builder.load(thread_ids, bufs.R.addr(active_ids + 1), ldg=use_ldg)
    # Neighbor loop: C[e] then color[C[e]], one trip per edge.
    builder.load(t_of_edge, bufs.C.addr(edge_idx), ldg=use_ldg, step=step)
    builder.load(
        t_of_edge,
        bufs.colors.addr(graph.col_indices[edge_idx]),
        ldg=False,  # the color array mutates during the algorithm: no __ldg
        step=step,
    )
    # Result store.
    builder.store(thread_ids, bufs.colors.addr(active_ids))

    # Instructions: per-edge loop body on working lanes (SIMT lockstep:
    # the warp pays its max trip count), per-vertex overhead, and the
    # colored-check on idle lanes (topology-driven).
    if thread_ids.size:
        trips = graph.degrees[active_ids].astype(np.int64)
        builder.instructions(thread_ids, trips * _INSTR_PER_EDGE, note="edge-loop")
        builder.instructions(thread_ids, _INSTR_PER_VERTEX)
    if idle_threads:
        builder.uniform_overhead(_INSTR_IDLE_THREAD)
    builder.activate(thread_ids.size)


def charge_conflict_kernel(
    builder: TraceBuilder,
    graph: CSRGraph,
    bufs: GraphBuffers,
    scope_ids: np.ndarray,
    thread_ids: np.ndarray,
    conflicted_mask: np.ndarray,
    *,
    use_ldg: bool,
    idle_threads: int = 0,
) -> None:
    """Record the conflict-detection kernel's behavior.

    ``conflicted_mask`` marks which scope vertices lost; losers write their
    state (un-color flag or worklist push is charged by the caller).
    """
    scope_ids = np.asarray(scope_ids, dtype=np.int64)
    thread_ids = np.asarray(thread_ids, dtype=np.int64)
    seg, step, edge_idx = expand_segments(graph, scope_ids)
    t_of_edge = thread_ids[seg]

    builder.load(thread_ids, bufs.R.addr(scope_ids), ldg=use_ldg)
    builder.load(thread_ids, bufs.R.addr(scope_ids + 1), ldg=use_ldg)
    builder.load(thread_ids, bufs.colors.addr(scope_ids))  # own color
    builder.load(t_of_edge, bufs.C.addr(edge_idx), ldg=use_ldg, step=step)
    builder.load(
        t_of_edge, bufs.colors.addr(graph.col_indices[edge_idx]), step=step
    )
    losers = thread_ids[np.asarray(conflicted_mask, dtype=bool)]
    if losers.size:
        builder.store(losers, bufs.aux.addr(scope_ids[conflicted_mask]))

    if thread_ids.size:
        trips = graph.degrees[scope_ids].astype(np.int64)
        builder.instructions(thread_ids, trips * (_INSTR_PER_EDGE - 2), note="edge-loop")
        builder.instructions(thread_ids, _INSTR_PER_VERTEX - 4)
    if idle_threads:
        builder.uniform_overhead(_INSTR_IDLE_THREAD)
    builder.activate(thread_ids.size)


# ----------------------------------------------------------------------
# Load-balanced (warp-centric) mapping — extension addressing the paper's
# future-work note that the proposed schemes degrade on skewed/sparse
# graphs.  Vertices with degree >= warp_size are processed edge-parallel
# by a whole warp (Merrill-style CTA/warp/thread load balancing, here at
# warp granularity): lanes stride the adjacency list, so (a) a warp's trip
# count drops from max-degree to ceil(degree/32), removing intra-warp
# imbalance, and (b) the C-array loads become coalesced (consecutive
# edges -> consecutive addresses).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WarpLBLayout:
    """Thread layout for the hybrid thread/warp-parallel mapping."""

    num_threads: int
    light_ids: np.ndarray  # vertices mapped one-per-thread (packed first)
    heavy_ids: np.ndarray  # vertices mapped one-per-warp (aligned after)
    heavy_base: int  # first thread id of the heavy region


def warp_lb_layout(
    graph: CSRGraph, active_ids: np.ndarray, warp_size: int = 32
) -> WarpLBLayout:
    """Split active vertices into thread-parallel and warp-parallel sets."""
    active_ids = np.asarray(active_ids, dtype=np.int64)
    degs = graph.degrees[active_ids]
    heavy = degs >= warp_size
    light_ids = active_ids[~heavy]
    heavy_ids = active_ids[heavy]
    heavy_base = -(-int(light_ids.size) // warp_size) * warp_size  # align
    num_threads = max(1, heavy_base + int(heavy_ids.size) * warp_size)
    return WarpLBLayout(
        num_threads=num_threads,
        light_ids=light_ids,
        heavy_ids=heavy_ids,
        heavy_base=heavy_base,
    )


def charge_color_kernel_lb(
    builder: TraceBuilder,
    graph: CSRGraph,
    bufs: GraphBuffers,
    layout: WarpLBLayout,
    *,
    use_ldg: bool,
) -> None:
    """Record the load-balanced coloring kernel's behavior."""
    warp = builder.device.warp_size

    # --- light vertices: classic one-thread-per-vertex mapping ----------
    if layout.light_ids.size:
        threads = np.arange(layout.light_ids.size, dtype=np.int64)
        charge_color_kernel(
            builder, graph, bufs, layout.light_ids, threads, use_ldg=use_ldg
        )

    # --- heavy vertices: one warp each, lanes stride the adjacency ------
    if layout.heavy_ids.size:
        seg, step, edge_idx = expand_segments(graph, layout.heavy_ids)
        lane = step % warp
        trip = step // warp
        t_of_edge = layout.heavy_base + seg * warp + lane
        warp_threads = layout.heavy_base + np.arange(
            layout.heavy_ids.size, dtype=np.int64
        ) * warp

        builder.load(warp_threads, bufs.R.addr(layout.heavy_ids), ldg=use_ldg)
        builder.load(warp_threads, bufs.R.addr(layout.heavy_ids + 1), ldg=use_ldg)
        # Strided row walk: lanes hit consecutive C entries -> coalesced.
        builder.load(t_of_edge, bufs.C.addr(edge_idx), ldg=use_ldg, step=trip)
        builder.load(
            t_of_edge, bufs.colors.addr(graph.col_indices[edge_idx]), step=trip
        )
        builder.store(warp_threads, bufs.colors.addr(layout.heavy_ids))

        # Instructions: the warp pays ceil(deg/32) trips plus a warp-level
        # mex reduction (ballot/shuffle merge of the forbidden sets).
        trips = -(-graph.degrees[layout.heavy_ids].astype(np.int64) // warp)
        builder.instructions(warp_threads, trips * _INSTR_PER_EDGE + _INSTR_PER_VERTEX + 12)
        builder.activate(int(layout.heavy_ids.size) * warp)


# ----------------------------------------------------------------------
# Edge-parallel conflict detection — extension.  The vertex-parallel
# conflict kernel inherits the coloring kernel's imbalance (a hub's thread
# scans its whole row).  Mapping one thread per *directed edge* instead
# makes the conflict pass perfectly balanced regardless of the degree
# distribution, at the cost of reading an explicit edge-source array
# (CSR alone cannot tell a thread which row its edge belongs to).
# ----------------------------------------------------------------------


def charge_conflict_kernel_edges(
    builder: TraceBuilder,
    graph: CSRGraph,
    bufs: GraphBuffers,
    src_buf: DeviceArray,
    scope_mask: np.ndarray,
    conflicted: np.ndarray,
    *,
    use_ldg: bool,
) -> None:
    """Record an edge-parallel conflict pass over the whole edge list.

    ``src_buf`` holds the per-edge source vertex (COO row array, built once
    at upload time).  Every thread loads its edge's endpoints and their
    colors — all four streams are either fully coalesced (src, C) or
    gathers (colors) with one trip per thread, so warp trip counts are
    uniform by construction.
    """
    m = graph.num_edges
    threads = np.arange(m, dtype=np.int64)
    src = src_buf.data.astype(np.int64)
    dst = graph.col_indices.astype(np.int64)
    builder.load(threads, src_buf.addr(threads), ldg=use_ldg)
    builder.load(threads, bufs.C.addr(threads), ldg=use_ldg)
    builder.load(threads, bufs.colors.addr(src))
    builder.load(threads, bufs.colors.addr(dst))
    losers = np.flatnonzero(np.isin(src, conflicted))
    if losers.size:
        builder.store(losers, bufs.aux.addr(src[losers]))
    builder.instructions(threads, 6)
    builder.activate(int(scope_mask.sum()) if scope_mask.size else m)
