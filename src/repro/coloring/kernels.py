"""Shared kernel machinery for the GPU coloring schemes.

Two halves:

* **Functional** — vectorized NumPy implementations of the two
  bulk-synchronous steps every speculative-greedy variant runs:
  :func:`speculative_color_step` (Alg. 4/5 lines 4-10: each active vertex
  takes the smallest color not used by any neighbor, reading the *round
  snapshot* of the color array) and :func:`detect_conflicts`
  (lines 12-18: un-color / re-enqueue the smaller endpoint of every
  monochromatic edge).
* **Trace charging** — :func:`charge_color_kernel` /
  :func:`charge_conflict_kernel` record what the SIMT hardware does for
  those steps: the ``R``/``C``/``color`` load streams (with or without
  ``__ldg``), the per-edge loop instructions, and the result stores.

Snapshot semantics note: real CUDA execution interleaves reads and writes
within a kernel, so some conflicts the snapshot model predicts are resolved
"for free" on hardware.  Snapshot is the worst case and the standard BSP
reading of the pseudocode; iteration counts are within one round of
hardware behavior either way.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from ..compiledsim import dispatch as _compiled
from ..faults.runtime import note_degradation
from ..gpusim.device import DeviceArray
from ..gpusim.trace import TraceBuilder
from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE

__all__ = [
    "GraphBuffers",
    "upload_graph",
    "ExpansionPlan",
    "get_expansion_plan",
    "Expansion",
    "KernelScratch",
    "expand_segments",
    "min_excluded_colors",
    "set_mex_strategy",
    "mex_strategy",
    "speculative_color_step",
    "speculative_color_waved",
    "resident_thread_capacity",
    "detect_conflicts",
    "charge_color_kernel",
    "charge_conflict_kernel",
    "charge_color_kernel_lb",
    "warp_lb_layout",
    "WarpLBLayout",
    "race_window_threads",
]


def resident_thread_capacity(device, launch) -> int:
    """Concurrent-thread capacity of the device for one launch config
    (SMs x occupancy-limited resident blocks x block size)."""
    from ..gpusim.occupancy import compute_occupancy

    occ = compute_occupancy(device.config, launch)
    return device.config.num_sms * occ.blocks_per_sm * launch.block_size


def race_window_threads(device, launch) -> int:
    """How many threads truly race (read each other's stale state).

    Races are modeled at *warp* granularity: a warp's 32 lanes execute in
    SIMT lockstep, so every lane's neighbor-color gather completes before
    any lane's color store — two adjacent vertices in one warp always read
    each other's stale state.  Threads in different warps (even of the
    same block) are skewed by scheduling quanta and divergent memory
    stalls measured in hundreds of cycles, so cross-warp read-write
    overlap is rare.  Warp granularity reproduces the observed behavior of
    speculative GPU coloring: conflicts are rare on randomly-ordered
    graphs but substantial on meshes whose natural vertex order places
    path neighbors in the same warp — the regime where the paper's own
    Fig. 7 shows topology-driven losing to the worklist-based scheme.
    """
    return device.config.warp_size

# Dynamic-instruction estimates (per the CUDA kernels these model):
# neighbor-loop body = index arithmetic + two loads' address math + mask
# stamp; vertex overhead = bounds loads, mask scan, color store, flags.
_INSTR_PER_EDGE = 6
_INSTR_PER_VERTEX = 14
_INSTR_IDLE_THREAD = 3  # colored check + exit


@dataclass(frozen=True)
class GraphBuffers:
    """Device-resident CSR arrays plus the color/state arrays."""

    R: DeviceArray
    C: DeviceArray
    colors: DeviceArray
    aux: DeviceArray  # colored flags (topo) or worklist shadow (data-driven)


def upload_graph(device, graph: CSRGraph, *, charge_transfer: bool = False) -> GraphBuffers:
    """Place the CSR arrays and color state on the device.

    The initial upload is excluded from timing by default, matching the
    paper ("the I/O part is excluded from the evaluation"); 3-step GM's
    *intermediate* transfers are charged explicitly by that scheme.
    """
    if charge_transfer:
        R = device.upload(graph.row_offsets.astype(np.int32), name="R")
        C = device.upload(graph.col_indices, name="C")
    else:
        R = device.register(graph.row_offsets.astype(np.int32), name="R")
        C = device.register(graph.col_indices, name="C")
    colors = device.alloc(graph.num_vertices, COLOR_DTYPE, name="colors", fill=0)
    aux = device.alloc(graph.num_vertices, np.int8, name="aux", fill=0)
    return GraphBuffers(R=R, C=C, colors=colors, aux=aux)


class ExpansionPlan:
    """Per-graph full-adjacency expansion, computed once and reused.

    The three full-graph streams every kernel round used to rebuild with a
    ``repeat``/``cumsum`` pass — ``seg`` (edge -> owner position), ``step``
    (trip index within the owner's neighbor loop) and ``edge_idx``
    (identity, since the full expansion enumerates ``C`` in order) — are
    materialized once per graph and frozen.  Round/wave slices are then
    derived by gather instead of re-expansion.  Memoized on the graph via
    :func:`get_expansion_plan` (the CSR arrays are immutable, so the plan
    cannot go stale).
    """

    __slots__ = ("seg", "step", "edge_idx", "all_ids", "starts", "lens", "_nbr64")

    def __init__(self, graph: CSRGraph):
        n = graph.num_vertices
        m = graph.num_edges
        lens = np.diff(graph.row_offsets)
        starts = graph.row_offsets[:-1].astype(np.int64)
        edge_idx = np.arange(m, dtype=np.int64)
        seg = np.repeat(np.arange(n, dtype=np.int64), lens)
        step = edge_idx - starts[seg] if m else edge_idx
        all_ids = np.arange(n, dtype=np.int64)
        for arr in (seg, step, edge_idx, all_ids, starts, lens):
            arr.setflags(write=False)
        self.seg = seg
        self.step = step
        self.edge_idx = edge_idx
        self.all_ids = all_ids
        self.starts = starts
        self.lens = lens  # int64 (np.diff of the int64 offsets)
        self._nbr64 = None

    def nbr64(self, graph: CSRGraph) -> np.ndarray:
        """``col_indices`` widened to int64, cached (conflict-scope gathers)."""
        if self._nbr64 is None:
            w = graph.col_indices.astype(np.int64)
            w.setflags(write=False)
            self._nbr64 = w
        return self._nbr64


def get_expansion_plan(graph: CSRGraph) -> ExpansionPlan:
    """The memoized :class:`ExpansionPlan` for ``graph``."""
    plan = graph.__dict__.get("_expansion_plan")
    if plan is None:
        plan = ExpansionPlan(graph)
        object.__setattr__(graph, "_expansion_plan", plan)
    return plan


def expand_segments(graph: CSRGraph, vertex_ids: np.ndarray):
    """Flatten the adjacency lists of ``vertex_ids``.

    Returns ``(seg, step, edge_idx)``: for every adjacency entry of every
    listed vertex, the position of its owner within ``vertex_ids``, its
    trip index inside the owner's neighbor loop, and its index into ``C``.
    All downstream gather streams derive from these three arrays.

    The full-range call (``vertex_ids == arange(n)``) returns the graph's
    cached :class:`ExpansionPlan` streams (read-only, zero copies); subset
    calls gather from the plan's offsets with a single ``repeat``.
    """
    vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
    plan = get_expansion_plan(graph)
    if vertex_ids.size == plan.all_ids.size and np.array_equal(
        vertex_ids, plan.all_ids
    ):
        return plan.seg, plan.step, plan.edge_idx
    lens = plan.lens[vertex_ids]
    total = int(lens.sum())
    if total == 0:
        z = np.empty(0, dtype=np.int64)
        return z, z, z
    seg = np.repeat(np.arange(vertex_ids.size, dtype=np.int64), lens)
    bnd = np.cumsum(lens) - lens
    step = np.arange(total, dtype=np.int64) - bnd[seg]
    edge_idx = plan.starts[vertex_ids][seg] + step
    return seg, step, edge_idx


class Expansion:
    """One round's adjacency expansion, shared across kernel calls.

    Schemes build this once per round for the active/scope vertex set and
    hand it to the color step, the conflict detector and the charge
    kernels — which used to re-expand the same ids up to four times per
    round.  Neighbor-id gathers are cached lazily in both widths (the
    charge kernels index device addresses with the packed int32 view; the
    conflict kernel compares int64 endpoints).
    """

    __slots__ = ("ids", "seg", "step", "edge_idx", "lens", "memo",
                 "_full", "_nbr32", "_nbr64")

    def __init__(self, graph: CSRGraph, ids: np.ndarray):
        #: Identity-keyed cache shared by every kernel charged against this
        #: expansion (derived gather/address arrays, coalesced transaction
        #: streams — see ``TraceBuilder.access``).  Entries hold references
        #: to their keyed arrays, so the ids cannot be recycled while the
        #: expansion lives.
        self.memo: dict = {}
        self.ids = np.asarray(ids, dtype=np.int64)
        plan = get_expansion_plan(graph)
        self._full = self.ids.size == plan.all_ids.size and np.array_equal(
            self.ids, plan.all_ids
        )
        if self._full:
            self.seg, self.step, self.edge_idx = plan.seg, plan.step, plan.edge_idx
            self.lens = plan.lens
            self._nbr32 = graph.col_indices
            self._nbr64 = None  # filled from the plan cache on demand
        else:
            self.seg, self.step, self.edge_idx = expand_segments(graph, self.ids)
            self.lens = plan.lens[self.ids]
            self._nbr32 = None
            self._nbr64 = None

    def nbr32(self, graph: CSRGraph) -> np.ndarray:
        """``C[edge_idx]`` in storage width (int32)."""
        if self._nbr32 is None:
            self._nbr32 = graph.col_indices[self.edge_idx]
        return self._nbr32

    def nbr64(self, graph: CSRGraph) -> np.ndarray:
        """``C[edge_idx]`` widened to int64."""
        if self._nbr64 is None:
            if self._full:
                self._nbr64 = get_expansion_plan(graph).nbr64(graph)
            else:
                self._nbr64 = self.nbr32(graph).astype(np.int64)
        return self._nbr64


class KernelScratch:
    """Grow-only scratch arena for round-scoped kernel temporaries.

    ``RoundLoop`` attaches one per run; the waved color step carves its
    per-wave temporaries out of it instead of reallocating every wave of
    every round.  Buffers only ever grow, so a request is O(1) after the
    first round reaches steady-state sizes.
    """

    __slots__ = ("_arena",)

    def __init__(self):
        self._arena: dict[str, np.ndarray] = {}

    def buf(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """An uninitialized length-``size`` view of the named buffer."""
        arr = self._arena.get(name)
        if arr is None or arr.size < size or arr.dtype != np.dtype(dtype):
            arr = np.empty(size, dtype=dtype)
            self._arena[name] = arr
        return arr[:size]


# ----------------------------------------------------------------------
# Minimum-excluded-color (mex) strategies
# ----------------------------------------------------------------------
#: Default word budget for the bitmask mex: segments whose neighbor colors
#: span more than ``64 * words`` distinct values fall back to the sort path
#: (the per-word OR sweep would cost more than one O(E log E) sort).
DEFAULT_MEX_WORDS = 8

_MEX_STRATEGY: tuple[str, int] = ("bitmask", DEFAULT_MEX_WORDS)


def _parse_mex_strategy(spec) -> tuple[str, int]:
    """Normalize a mex-strategy spec: ``'sort'``, ``'bitmask'``, ``'bitmask:N'``."""
    if isinstance(spec, tuple):
        spec = f"{spec[0]}:{spec[1]}"
    name, _, words = str(spec).partition(":")
    if name == "sort":
        return ("sort", 0)
    if name == "bitmask":
        limit = int(words) if words else DEFAULT_MEX_WORDS
        if limit < 1:
            raise ValueError(f"bitmask word budget must be >= 1, got {limit}")
        return ("bitmask", limit)
    raise ValueError(
        f"unknown mex strategy {spec!r}; expected 'sort', 'bitmask' or 'bitmask:N'"
    )


def set_mex_strategy(spec) -> tuple[str, int]:
    """Set the process-wide mex strategy; returns the previous one."""
    global _MEX_STRATEGY
    previous = _MEX_STRATEGY
    _MEX_STRATEGY = _parse_mex_strategy(spec)
    return previous


@contextlib.contextmanager
def mex_strategy(spec):
    """Scoped mex-strategy override (the engine's ``mex=`` option)."""
    previous = set_mex_strategy(spec)
    try:
        yield
    finally:
        global _MEX_STRATEGY
        _MEX_STRATEGY = previous


def _mex_sort(
    seg_ids: np.ndarray, nbr_colors: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sort-based exact mex (the historical path; unbounded color range).

    After per-segment dedup and sort, an entry with color ``rank+1`` proves
    colors ``1..rank+1`` are all present (the entries below it are distinct
    positive integers smaller than it), so ``mex = (length of the
    consecutive prefix) + 1`` — one bincount.
    """
    mask = nbr_colors > 0
    s = seg_ids[mask]
    c = nbr_colors[mask].astype(np.int64)
    if s.size == 0:
        return np.ones(num_segments, dtype=COLOR_DTYPE)
    base = int(c.max()) + 2
    key = np.unique(s * base + c)
    s2 = key // base
    c2 = key % base
    seg_start = np.searchsorted(s2, np.arange(num_segments, dtype=np.int64))
    rank = np.arange(key.size, dtype=np.int64) - seg_start[s2]
    ok = c2 == rank + 1
    prefix = np.bincount(s2[ok], minlength=num_segments)
    return (prefix + 1).astype(COLOR_DTYPE)


#: Precomputed single-bit words: ``_BIT64[b] == 1 << b`` (avoids a per-call
#: astype + broadcast shift in the mex hot loop).
_BIT64 = np.uint64(1) << np.arange(64, dtype=np.uint64)


def _mex_bitmask(
    seg_ids: np.ndarray,
    nbr_colors: np.ndarray,
    num_segments: int,
    max_words: int,
    *,
    assume_sorted: bool = False,
) -> np.ndarray:
    """Bitmask exact mex: OR packed forbidden-color words per CSR segment.

    Colors ``1..64w`` map to bits of ``w`` uint64 words; one
    ``np.bitwise_or.reduceat`` sweep per word folds each segment's
    forbidden set, and the answer is the lowest zero bit (extracted exactly
    with the two's-complement trick + ``frexp``).  Requires sorted
    ``seg_ids`` (runtime-checked unless the caller vouches with
    ``assume_sorted``) and a bounded color range — otherwise defers to
    :func:`_mex_sort`.
    """
    mask = nbr_colors > 0
    s = seg_ids[mask]
    if s.size == 0:
        return np.ones(num_segments, dtype=COLOR_DTYPE)
    c = nbr_colors[mask]  # any integer dtype; values bound the word count
    num_words = (int(c.max()) + 63) >> 6
    if num_words > max_words:
        # Wide palettes pay per-word sweeps; defer to the sort path.  This
        # is the mex degradation chain — byte-identical results, recorded
        # when a robustness bundle is active (overflow only: the unsorted-
        # stream fallback below is a routing decision, not a degradation).
        note_degradation(
            "mex", "bitmask", "sort", "word-budget-overflow",
            f"num_words={num_words} > max_words={max_words}",
        )
        return _mex_sort(seg_ids, nbr_colors, num_segments)
    if not assume_sorted and np.any(s[1:] < s[:-1]):
        # Unsorted segments (distance-2's concatenated two-hop stream)
        # would break reduceat runs.
        return _mex_sort(seg_ids, nbr_colors, num_segments)
    bit = c - 1
    word = bit >> 6
    bits = _BIT64[bit & 63]
    heads = np.empty(s.size, dtype=bool)
    heads[0] = True
    np.not_equal(s[1:], s[:-1], out=heads[1:])
    starts = np.flatnonzero(heads)
    run_seg = s[starts]
    full = np.int64(num_words) * 64 + 1  # every tracked color present
    res = np.full(run_seg.size, full, dtype=np.int64)
    done = np.zeros(run_seg.size, dtype=bool)
    one = np.uint64(1)
    for wi in range(num_words):
        contrib = np.where(word == wi, bits, np.uint64(0))
        inv = ~np.bitwise_or.reduceat(contrib, starts)
        hit = (inv != 0) & ~done
        if hit.any():
            lsb = inv[hit]
            lsb &= ~lsb + one
            # frexp is exact on powers of two: lsb == 0.5 * 2**exp.
            _, exp = np.frexp(lsb.astype(np.float64))
            res[hit] = wi * 64 + exp  # == wi*64 + bit_index + 1
            done |= hit
            if done.all():
                break
    out = np.ones(num_segments, dtype=COLOR_DTYPE)
    out[run_seg] = res  # values are <= 64*max_words + 1: int32-safe
    return out


def min_excluded_colors(
    seg_ids: np.ndarray,
    nbr_colors: np.ndarray,
    num_segments: int,
    *,
    assume_sorted: bool = False,
) -> np.ndarray:
    """Smallest positive color absent from each segment's neighbor colors.

    Dispatches on the process-wide strategy (see :func:`set_mex_strategy` /
    the engine's ``mex=`` option): ``bitmask`` (default) packs forbidden
    colors into uint64 words and ORs them per segment; ``sort`` is the
    historical dedup-sort formulation.  Both are exact and byte-identical.
    ``assume_sorted`` lets callers whose ``seg_ids`` are sorted by
    construction (CSR expansions) skip the bitmask path's runtime check —
    it matters in the wave loop, which calls this once per 32-thread wave.
    """
    if num_segments == 0:
        return np.zeros(0, dtype=COLOR_DTYPE)
    if assume_sorted:
        # Compiled engine active: one stamp-array pass, exact for any
        # color range (no word-budget overflow, hence no mex degradation
        # chain). Declines (None) on dtype mismatch or inactive scope.
        compiled = _compiled.mex_sorted(seg_ids, nbr_colors, num_segments)
        if compiled is not None:
            return compiled
    mode, words = _MEX_STRATEGY
    if mode == "bitmask":
        return _mex_bitmask(
            seg_ids, nbr_colors, num_segments, words, assume_sorted=assume_sorted
        )
    return _mex_sort(seg_ids, nbr_colors, num_segments)


def speculative_color_step(
    graph: CSRGraph,
    colors: np.ndarray,
    active_ids: np.ndarray,
    expansion: Expansion | None = None,
) -> np.ndarray:
    """One parallel coloring round: colors for ``active_ids`` (snapshot read).

    Returns the new color per active vertex; the caller commits them after
    (conceptually) the kernel-wide write, i.e. ``colors`` is not mutated.
    This is the worst-case full-snapshot semantics; the schemes use
    :func:`speculative_color_waved`, which models wave-granular visibility.
    """
    active_ids = np.asarray(active_ids, dtype=np.int64)
    if expansion is None:
        expansion = Expansion(graph, active_ids)
    nbr_colors = colors[expansion.nbr32(graph)]
    return min_excluded_colors(
        expansion.seg, nbr_colors, active_ids.size, assume_sorted=True
    )


def speculative_color_waved(
    graph: CSRGraph,
    colors: np.ndarray,
    active_ids: np.ndarray,
    resident_threads: int,
    thread_ids: np.ndarray | None = None,
    *,
    expansion: Expansion | None = None,
    scratch: KernelScratch | None = None,
) -> np.ndarray:
    """Coloring round with wave-granular write visibility.

    A kernel's blocks execute in occupancy-sized *waves*: a wave's threads
    race with each other (they read the wave-entry snapshot), but a later
    wave sees everything earlier waves committed.  Full-snapshot semantics
    would predict far more conflicts than hardware exhibits — two vertices
    can only race if their kernel executions actually overlap in time.

    ``resident_threads`` is the device's concurrent-thread capacity for
    this launch (SMs x resident blocks x block size).  ``thread_ids`` maps
    each active vertex to its grid thread (defaults to its position, the
    data-driven compact mapping; topology-driven passes the vertex ids so
    waves cover thread *ranges* including idle lanes).  Mutates ``colors``
    for the processed vertices and returns their new values.

    The round's adjacency is expanded **once** (or taken from the caller's
    shared ``expansion``); each wave slices it — the neighbor-color gather
    alone is refreshed per wave, because earlier waves mutate ``colors``.
    """
    active_ids = np.asarray(active_ids, dtype=np.int64)
    if resident_threads < 1:
        raise ValueError("resident_threads must be positive")
    if thread_ids is None:
        num_waves = -(-active_ids.size // resident_threads) if active_ids.size else 0
        bounds = np.minimum(
            np.arange(num_waves + 1, dtype=np.int64) * resident_threads,
            active_ids.size,
        )
    else:
        thread_ids = np.asarray(thread_ids, dtype=np.int64)
        if thread_ids.size and np.any(thread_ids[1:] < thread_ids[:-1]):
            raise ValueError("thread_ids must be sorted")
        last_wave = int(thread_ids[-1]) // resident_threads if thread_ids.size else 0
        edges = np.arange(1, last_wave + 1, dtype=np.int64) * resident_threads
        bounds = np.concatenate(
            [
                np.zeros(1, dtype=np.int64),
                np.searchsorted(thread_ids, edges),
                np.asarray([active_ids.size], dtype=np.int64),
            ]
        )
    if expansion is None:
        expansion = Expansion(graph, active_ids)
    if scratch is None:
        scratch = KernelScratch()
    seg = expansion.seg
    nbr = expansion.nbr32(graph)
    epos = np.searchsorted(seg, bounds)
    if _compiled.active():
        # Fused wave loop: same two-phase (snapshot reads, then commit)
        # visibility per wave, one compiled pass for the whole round.
        fused = _compiled.waved_color(
            active_ids, seg, nbr, colors, bounds, epos
        )
        if fused is not None:
            return fused
    out = np.empty(active_ids.size, dtype=COLOR_DTYPE)
    for i in range(bounds.size - 1):
        lo = int(bounds[i])
        hi = int(bounds[i + 1])
        if hi <= lo:
            continue
        elo = int(epos[i])
        ehi = int(epos[i + 1])
        seg_w = np.subtract(
            seg[elo:ehi], lo, out=scratch.buf("waved.seg", ehi - elo)
        )
        # Fresh gather each wave: earlier waves committed into ``colors``.
        nbr_colors = np.take(
            colors, nbr[elo:ehi],
            out=scratch.buf("waved.nbr_colors", ehi - elo, colors.dtype),
        )
        # seg_w is a shifted slice of the (sorted) expansion segments.
        fresh = min_excluded_colors(seg_w, nbr_colors, hi - lo, assume_sorted=True)
        colors[active_ids[lo:hi]] = fresh
        out[lo:hi] = fresh
    return out


def detect_conflicts(
    graph: CSRGraph,
    colors: np.ndarray,
    scope_ids: np.ndarray,
    expansion: Expansion | None = None,
) -> np.ndarray:
    """Vertices in ``scope_ids`` that lose a color conflict.

    Implements the pseudocode's tie-break: of a monochromatic edge
    ``(v, w)``, the *smaller id* is un-colored (``v < w`` keeps ``w``).
    Returns the conflicted subset of ``scope_ids`` (original ids).
    """
    scope_ids = np.asarray(scope_ids, dtype=np.int64)
    if expansion is None:
        expansion = Expansion(graph, scope_ids)
    seg = expansion.seg
    if expansion.edge_idx.size == 0:
        return np.empty(0, dtype=np.int64)
    if _compiled.active():
        loser8 = _compiled.detect_conflicts(
            seg, expansion.nbr32(graph), colors,
            None if expansion._full else scope_ids, scope_ids.size,
        )
        if loser8 is not None:
            return scope_ids[loser8.view(bool)]
    v = seg if expansion._full else scope_ids[seg]
    w = expansion.nbr64(graph)
    clash = (colors[v] == colors[w]) & (colors[v] > 0) & (v < w)
    loser = np.zeros(scope_ids.size, dtype=bool)
    loser[seg[clash]] = True
    return scope_ids[loser]


# ----------------------------------------------------------------------
# Trace charging
# ----------------------------------------------------------------------
def _memoized(memo: dict, key: tuple, refs: tuple, make):
    """Fetch/compute a memo entry; ``refs`` are held so id-keys stay sound."""
    hit = memo.get(key)
    if hit is not None:
        return hit[1]
    value = make()
    memo[key] = (refs, value)
    return value


def _charge_addrs(memo: dict, bufs: GraphBuffers, graph, expansion, ids, threads):
    """The five address/gather arrays both charge kernels replay.

    Memoized on the expansion so the color and conflict kernels (and, when
    the expansion outlives a round, later rounds) hand ``TraceBuilder``
    the *same array objects* — which is what lets the builder's
    coalescing memo recognize the repeated streams.
    """
    nbr = expansion.nbr32(graph)
    edge_idx = expansion.edge_idx
    t_of_edge = _memoized(
        memo, ("t_edge", id(threads)), (threads,), lambda: threads[expansion.seg]
    )
    r_lo = _memoized(
        memo, ("addr", bufs.R.base, id(ids)), (ids,), lambda: bufs.R.addr(ids)
    )
    r_hi = _memoized(
        memo, ("addr+1", bufs.R.base, id(ids)), (ids,), lambda: bufs.R.addr(ids + 1)
    )
    c_addr = _memoized(
        memo, ("addr", bufs.C.base, id(edge_idx)), (edge_idx,),
        lambda: bufs.C.addr(edge_idx),
    )
    ncol_addr = _memoized(
        memo, ("addr", bufs.colors.base, id(nbr)), (nbr,),
        lambda: bufs.colors.addr(nbr),
    )
    own_addr = _memoized(
        memo, ("addr", bufs.colors.base, id(ids)), (ids,),
        lambda: bufs.colors.addr(ids),
    )
    return t_of_edge, r_lo, r_hi, c_addr, ncol_addr, own_addr


def charge_color_kernel(
    builder: TraceBuilder,
    graph: CSRGraph,
    bufs: GraphBuffers,
    active_ids: np.ndarray,
    thread_ids: np.ndarray,
    *,
    use_ldg: bool,
    idle_threads: int = 0,
    expansion: Expansion | None = None,
) -> None:
    """Record the memory/instruction behavior of one coloring kernel.

    ``active_ids``/``thread_ids`` are parallel: the vertex each working
    thread owns.  Topology-driven passes ``thread_ids == active_ids`` (one
    thread per vertex, most idle); data-driven passes compact thread ids.
    """
    active_ids = np.asarray(active_ids, dtype=np.int64)
    thread_ids = np.asarray(thread_ids, dtype=np.int64)
    if expansion is None:
        expansion = Expansion(graph, active_ids)
    step = expansion.step
    memo = expansion.memo
    t_of_edge, r_lo, r_hi, c_addr, ncol_addr, own_addr = _charge_addrs(
        memo, bufs, graph, expansion, active_ids, thread_ids
    )

    # Row bounds: R[v] and R[v+1] — one coalesced-ish load pair per thread.
    builder.load(thread_ids, r_lo, ldg=use_ldg, memo=memo)
    builder.load(thread_ids, r_hi, ldg=use_ldg, memo=memo)
    # Neighbor loop: C[e] then color[C[e]], one trip per edge.
    builder.load(t_of_edge, c_addr, ldg=use_ldg, step=step, memo=memo)
    builder.load(
        t_of_edge,
        ncol_addr,
        ldg=False,  # the color array mutates during the algorithm: no __ldg
        step=step,
        memo=memo,
    )
    # Result store.
    builder.store(thread_ids, own_addr, memo=memo)

    # Instructions: per-edge loop body on working lanes (SIMT lockstep:
    # the warp pays its max trip count), per-vertex overhead, and the
    # colored-check on idle lanes (topology-driven).
    if thread_ids.size:
        builder.instructions(
            thread_ids, expansion.lens * _INSTR_PER_EDGE, note="edge-loop"
        )
        builder.instructions(thread_ids, _INSTR_PER_VERTEX)
    if idle_threads:
        builder.uniform_overhead(_INSTR_IDLE_THREAD)
    builder.activate(thread_ids.size)


def charge_conflict_kernel(
    builder: TraceBuilder,
    graph: CSRGraph,
    bufs: GraphBuffers,
    scope_ids: np.ndarray,
    thread_ids: np.ndarray,
    conflicted_mask: np.ndarray,
    *,
    use_ldg: bool,
    idle_threads: int = 0,
    expansion: Expansion | None = None,
) -> None:
    """Record the conflict-detection kernel's behavior.

    ``conflicted_mask`` marks which scope vertices lost; losers write their
    state (un-color flag or worklist push is charged by the caller).
    """
    scope_ids = np.asarray(scope_ids, dtype=np.int64)
    thread_ids = np.asarray(thread_ids, dtype=np.int64)
    if expansion is None:
        expansion = Expansion(graph, scope_ids)
    step = expansion.step
    memo = expansion.memo
    t_of_edge, r_lo, r_hi, c_addr, ncol_addr, own_addr = _charge_addrs(
        memo, bufs, graph, expansion, scope_ids, thread_ids
    )

    builder.load(thread_ids, r_lo, ldg=use_ldg, memo=memo)
    builder.load(thread_ids, r_hi, ldg=use_ldg, memo=memo)
    builder.load(thread_ids, own_addr, memo=memo)  # own color
    builder.load(t_of_edge, c_addr, ldg=use_ldg, step=step, memo=memo)
    builder.load(t_of_edge, ncol_addr, step=step, memo=memo)
    losers = thread_ids[np.asarray(conflicted_mask, dtype=bool)]
    if losers.size:
        # Loser sets vary per round — not worth memo entries.
        builder.store(losers, bufs.aux.addr(scope_ids[conflicted_mask]))

    if thread_ids.size:
        builder.instructions(
            thread_ids, expansion.lens * (_INSTR_PER_EDGE - 2), note="edge-loop"
        )
        builder.instructions(thread_ids, _INSTR_PER_VERTEX - 4)
    if idle_threads:
        builder.uniform_overhead(_INSTR_IDLE_THREAD)
    builder.activate(thread_ids.size)


# ----------------------------------------------------------------------
# Load-balanced (warp-centric) mapping — extension addressing the paper's
# future-work note that the proposed schemes degrade on skewed/sparse
# graphs.  Vertices with degree >= warp_size are processed edge-parallel
# by a whole warp (Merrill-style CTA/warp/thread load balancing, here at
# warp granularity): lanes stride the adjacency list, so (a) a warp's trip
# count drops from max-degree to ceil(degree/32), removing intra-warp
# imbalance, and (b) the C-array loads become coalesced (consecutive
# edges -> consecutive addresses).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WarpLBLayout:
    """Thread layout for the hybrid thread/warp-parallel mapping."""

    num_threads: int
    light_ids: np.ndarray  # vertices mapped one-per-thread (packed first)
    heavy_ids: np.ndarray  # vertices mapped one-per-warp (aligned after)
    heavy_base: int  # first thread id of the heavy region


def warp_lb_layout(
    graph: CSRGraph, active_ids: np.ndarray, warp_size: int = 32
) -> WarpLBLayout:
    """Split active vertices into thread-parallel and warp-parallel sets."""
    active_ids = np.asarray(active_ids, dtype=np.int64)
    degs = graph.degrees[active_ids]
    heavy = degs >= warp_size
    light_ids = active_ids[~heavy]
    heavy_ids = active_ids[heavy]
    heavy_base = -(-int(light_ids.size) // warp_size) * warp_size  # align
    num_threads = max(1, heavy_base + int(heavy_ids.size) * warp_size)
    return WarpLBLayout(
        num_threads=num_threads,
        light_ids=light_ids,
        heavy_ids=heavy_ids,
        heavy_base=heavy_base,
    )


def charge_color_kernel_lb(
    builder: TraceBuilder,
    graph: CSRGraph,
    bufs: GraphBuffers,
    layout: WarpLBLayout,
    *,
    use_ldg: bool,
) -> None:
    """Record the load-balanced coloring kernel's behavior."""
    warp = builder.device.warp_size

    # --- light vertices: classic one-thread-per-vertex mapping ----------
    if layout.light_ids.size:
        threads = np.arange(layout.light_ids.size, dtype=np.int64)
        charge_color_kernel(
            builder, graph, bufs, layout.light_ids, threads, use_ldg=use_ldg
        )

    # --- heavy vertices: one warp each, lanes stride the adjacency ------
    if layout.heavy_ids.size:
        seg, step, edge_idx = expand_segments(graph, layout.heavy_ids)
        lane = step % warp
        trip = step // warp
        t_of_edge = layout.heavy_base + seg * warp + lane
        warp_threads = layout.heavy_base + np.arange(
            layout.heavy_ids.size, dtype=np.int64
        ) * warp

        builder.load(warp_threads, bufs.R.addr(layout.heavy_ids), ldg=use_ldg)
        builder.load(warp_threads, bufs.R.addr(layout.heavy_ids + 1), ldg=use_ldg)
        # Strided row walk: lanes hit consecutive C entries -> coalesced.
        builder.load(t_of_edge, bufs.C.addr(edge_idx), ldg=use_ldg, step=trip)
        builder.load(
            t_of_edge, bufs.colors.addr(graph.col_indices[edge_idx]), step=trip
        )
        builder.store(warp_threads, bufs.colors.addr(layout.heavy_ids))

        # Instructions: the warp pays ceil(deg/32) trips plus a warp-level
        # mex reduction (ballot/shuffle merge of the forbidden sets).
        trips = -(-graph.degrees[layout.heavy_ids].astype(np.int64) // warp)
        builder.instructions(warp_threads, trips * _INSTR_PER_EDGE + _INSTR_PER_VERTEX + 12)
        builder.activate(int(layout.heavy_ids.size) * warp)


# ----------------------------------------------------------------------
# Edge-parallel conflict detection — extension.  The vertex-parallel
# conflict kernel inherits the coloring kernel's imbalance (a hub's thread
# scans its whole row).  Mapping one thread per *directed edge* instead
# makes the conflict pass perfectly balanced regardless of the degree
# distribution, at the cost of reading an explicit edge-source array
# (CSR alone cannot tell a thread which row its edge belongs to).
# ----------------------------------------------------------------------


def charge_conflict_kernel_edges(
    builder: TraceBuilder,
    graph: CSRGraph,
    bufs: GraphBuffers,
    src_buf: DeviceArray,
    scope_mask: np.ndarray,
    conflicted: np.ndarray,
    *,
    use_ldg: bool,
) -> None:
    """Record an edge-parallel conflict pass over the whole edge list.

    ``src_buf`` holds the per-edge source vertex (COO row array, built once
    at upload time).  Every thread loads its edge's endpoints and their
    colors — all four streams are either fully coalesced (src, C) or
    gathers (colors) with one trip per thread, so warp trip counts are
    uniform by construction.
    """
    m = graph.num_edges
    threads = np.arange(m, dtype=np.int64)
    src = src_buf.data.astype(np.int64)
    dst = graph.col_indices.astype(np.int64)
    builder.load(threads, src_buf.addr(threads), ldg=use_ldg)
    builder.load(threads, bufs.C.addr(threads), ldg=use_ldg)
    builder.load(threads, bufs.colors.addr(src))
    builder.load(threads, bufs.colors.addr(dst))
    losers = np.flatnonzero(np.isin(src, conflicted))
    if losers.size:
        builder.store(losers, bufs.aux.addr(src[losers]))
    builder.instructions(threads, 6)
    builder.activate(int(scope_mask.sum()) if scope_mask.size else m)
