"""Algorithm 3: Jones–Plassmann maximal-independent-set coloring.

Luby-style: every remaining vertex draws a random priority; local maxima
form an independent set, which takes the round's color.  No conflicts by
construction, but one color per round and the expected round count grows
with the chromatic structure — the quality/speed trade the paper's
Section II contrasts with speculation.

Variants:

* ``color_jp`` — classic JP with random priorities (one color per round).
* ``color_jp_lf`` — the PLF refinement (Gjertsen et al.): priority =
  (degree, random tiebreak), which consistently saves colors.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringResult
from .kernels import Expansion

__all__ = ["color_jp", "color_jp_gpu", "color_jp_lf", "local_maxima"]

_MAX_ITERATIONS = 100_000


def local_maxima(
    graph: CSRGraph,
    active_ids: np.ndarray,
    priorities: np.ndarray,
    expansion: Expansion | None = None,
) -> np.ndarray:
    """Active vertices whose priority beats all *active* neighbors'.

    Ties break toward the larger vertex id, making the independent set
    deterministic even with colliding priorities.  ``priorities`` is
    indexed by vertex id; inactive neighbors do not compete.
    """
    active_ids = np.asarray(active_ids, dtype=np.int64)
    active_mask = np.zeros(graph.num_vertices, dtype=bool)
    active_mask[active_ids] = True
    if expansion is None:
        expansion = Expansion(graph, active_ids)
    seg = expansion.seg
    w = expansion.nbr64(graph)
    v = active_ids[seg]
    competing = active_mask[w]
    pv, pw = priorities[v], priorities[w]
    beaten = competing & ((pw > pv) | ((pw == pv) & (w > v)))
    wins = np.ones(active_ids.size, dtype=bool)
    wins[seg[beaten]] = False
    return active_ids[wins]


def _jp_loop(graph: CSRGraph, priority_fn, scheme: str, *, use_mex: bool) -> ColoringResult:
    """Shared MIS-peeling loop.

    ``use_mex=False`` is the paper's Alg. 3 verbatim: the whole round's
    independent set takes the round number as its color.  ``use_mex=True``
    is the Jones–Plassmann heuristic proper: each elected vertex takes the
    smallest color its already-colored neighbors permit, which reuses old
    colors and matches greedy quality far more closely.
    """
    from .kernels import speculative_color_step

    n = graph.num_vertices
    colors = np.zeros(n, dtype=COLOR_DTYPE)
    work = np.arange(n, dtype=np.int64)
    rounds = 0
    while work.size:
        rounds += 1
        if rounds >= _MAX_ITERATIONS:
            raise RuntimeError("JP coloring failed to converge")
        priorities = priority_fn(work, rounds)
        mis = local_maxima(graph, work, priorities)
        if use_mex:
            # mis is independent, so the speculative step is conflict-free.
            colors[mis] = speculative_color_step(graph, colors, mis)
        else:
            colors[mis] = rounds
        keep = colors[work] == 0
        work = work[keep]
    return ColoringResult(colors=colors, scheme=scheme, iterations=rounds)


def color_jp(graph: CSRGraph, *, seed: int = 0, use_mex: bool = False) -> ColoringResult:
    """The paper's Alg. 3: random priorities, round number as color.

    Pass ``use_mex=True`` for the original JP heuristic's smallest-
    available-color assignment.
    """
    n = graph.num_vertices
    base_rng = np.random.default_rng(seed)

    def priority_fn(work: np.ndarray, round_no: int) -> np.ndarray:
        pr = np.zeros(n, dtype=np.float64)
        pr[work] = base_rng.random(work.size)
        return pr

    return _jp_loop(graph, priority_fn, "jp-mex" if use_mex else "jp", use_mex=use_mex)


def color_jp_lf(graph: CSRGraph, *, seed: int = 0) -> ColoringResult:
    """PLF (Gjertsen et al.): largest-degree-first priorities, random
    tie-breaking, smallest-available-color assignment."""
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    tiebreak = rng.random(n)
    static_priority = graph.degrees.astype(np.float64) + tiebreak

    def priority_fn(work: np.ndarray, round_no: int) -> np.ndarray:
        return static_priority

    return _jp_loop(graph, priority_fn, "jp-lf", use_mex=True)


def color_jp_gpu(
    graph,
    *,
    block_size: int = 128,
    seed: int = 0,
    device=None,
):
    """Alg. 3 priced on the simulated device (extension).

    The historical GPU baseline multi-hash csrcolor was designed to beat:
    every round launches (1) a priority kernel writing a fresh random
    number per remaining vertex and (2) an MIS kernel comparing each
    remaining vertex against its neighbors' priorities — one color per
    round, so the launch count equals the color count.  Its slowness
    relative to csrcolor (which extracts 2N sets per round) is the reason
    multi-hash exists.
    """
    import numpy as np

    from ..gpusim.config import LaunchConfig
    from ..gpusim.device import Device
    from .kernels import upload_graph

    device = device or Device()
    launch = LaunchConfig(block_size=block_size)
    n = graph.num_vertices
    bufs = upload_graph(device, graph)
    colors = bufs.colors.data
    r_buf = device.alloc(n, np.float32, name="priorities")
    rng = np.random.default_rng(seed)
    all_ids = np.arange(n, dtype=np.int64)

    active = all_ids
    color = 0
    profiles = []
    while active.size:
        color += 1
        if color > n + 1:
            raise RuntimeError("JP-GPU failed to converge")
        # --- priority kernel: one store per remaining vertex -------------
        tb = device.builder(n, launch, name=f"jp-rand-{color}")
        priorities = np.zeros(n)
        priorities[active] = rng.random(active.size)
        tb.store(active, r_buf.addr(active))
        tb.instructions(active, 8)  # RNG state update
        tb.uniform_overhead(2)
        tb.activate(active.size)
        profiles.append(device.commit(tb))

        # --- MIS kernel: compare against active neighbors ----------------
        # One expansion of the active set serves the MIS election and the
        # charge streams.
        tb = device.builder(n, launch, name=f"jp-mis-{color}")
        active_exp = Expansion(graph, active)
        seg, step, edge_idx = active_exp.seg, active_exp.step, active_exp.edge_idx
        t_of_edge = active[seg]
        tb.load(active, bufs.R.addr(active))
        tb.load(active, bufs.R.addr(active + 1))
        tb.load(t_of_edge, bufs.C.addr(edge_idx), step=step)
        w = active_exp.nbr64(graph)
        tb.load(t_of_edge, r_buf.addr(w), step=step)
        tb.load(t_of_edge, bufs.colors.addr(w), step=step)  # active check
        mis = local_maxima(graph, active, priorities, expansion=active_exp)
        if mis.size:
            tb.store(mis, bufs.colors.addr(mis))
        tb.instructions(active, active_exp.lens * 5 + 10)
        tb.uniform_overhead(3)
        tb.activate(active.size)
        profiles.append(device.commit(tb))

        colors[mis] = color
        device.dtoh(4)
        active = active[colors[active] == 0]

    return ColoringResult(
        colors=colors.astype(COLOR_DTYPE, copy=True),
        scheme="jp-gpu",
        iterations=color,
        gpu_time_us=device.timeline.kernel_time_us()
        + device.timeline.launch_overhead_us(device.config),
        transfer_time_us=device.timeline.transfer_time_us(),
        num_kernel_launches=device.timeline.num_launches(),
        profiles=profiles,
        extra={"block_size": block_size},
    )
