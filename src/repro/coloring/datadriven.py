"""Algorithm 5: data-driven speculative-greedy coloring (D-base/D-ldg).

Threads are created in proportion to the worklist, so no lane idles on an
already-colored vertex — the work-efficiency win over Alg. 4.  The price is
worklist maintenance: conflicted vertices must be *compacted* into the out
worklist, and the paper's atomic-reduction optimization (Fig. 5) does that
with a block-level prefix sum plus one global ``atomicAdd`` per block
instead of one per pushed vertex.

Double buffering (Nasre et al.): ``W_in``/``W_out`` swap by pointer at the
end of every round — no copying.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.config import LaunchConfig
from ..gpusim.device import Device
from ..graph.csr import CSRGraph
from ..primitives.compact import charge_compaction
from ..primitives.worklist import DoubleBufferedWorklist
from .base import COLOR_DTYPE, ColoringResult
from .kernels import (
    charge_color_kernel,
    charge_color_kernel_lb,
    charge_conflict_kernel,
    detect_conflicts,
    race_window_threads,
    speculative_color_waved,
    upload_graph,
    warp_lb_layout,
)

__all__ = ["color_data_driven"]

_MAX_ITERATIONS = 10_000


def color_data_driven(
    graph: CSRGraph,
    *,
    use_ldg: bool = False,
    block_size: int = 128,
    device: Device | None = None,
    worklist_strategy: str = "scan",
    load_balance: bool = False,
) -> ColoringResult:
    """Run Alg. 5 on the simulated device.

    Parameters
    ----------
    use_ldg:
        Read-only-cache path for ``R``/``C`` (D-ldg vs D-base).
    block_size:
        CUDA thread-block size.
    worklist_strategy:
        ``'scan'`` — the paper's optimized push (block prefix sum, one
        atomic per block); ``'atomic'`` — naive one-atomic-per-push
        (the Fig. 5 ablation baseline).
    load_balance:
        Warp-centric mapping for high-degree vertices in the coloring
        kernel (extension addressing the paper's future-work note on
        skewed graphs): one warp strides each hub's adjacency list,
        removing intra-warp imbalance and coalescing the C-array walk.
    """
    if worklist_strategy not in ("scan", "atomic"):
        raise ValueError("worklist_strategy must be 'scan' or 'atomic'")
    device = device or Device()
    launch = LaunchConfig(block_size=block_size)
    n = graph.num_vertices
    bufs = upload_graph(device, graph)
    colors = bufs.colors.data
    worklist = DoubleBufferedWorklist(device, capacity=max(n, 1))
    worklist.initialize(np.arange(n, dtype=np.int64))
    wave_threads = race_window_threads(device, launch)

    iterations = 0
    profiles = []
    while len(worklist) > 0:
        if iterations >= _MAX_ITERATIONS:
            raise RuntimeError("data-driven coloring failed to converge")
        work = worklist.items()  # vertex ids, compact
        k = work.size
        threads = np.arange(k, dtype=np.int64)

        # ---- coloring kernel: k threads, one per worklist entry ---------
        if load_balance:
            layout = warp_lb_layout(graph, work, device.config.warp_size)
            tb = device.builder(
                layout.num_threads, launch, name=f"data-color-{iterations}"
            )
            tb.load(threads, worklist.in_buffer.addr(threads))  # W_in reads
            speculative_color_waved(graph, colors, work, wave_threads)
            charge_color_kernel_lb(tb, graph, bufs, layout, use_ldg=use_ldg)
        else:
            tb = device.builder(k, launch, name=f"data-color-{iterations}")
            tb.load(threads, worklist.in_buffer.addr(threads))  # W_in[tid]
            speculative_color_waved(graph, colors, work, wave_threads)
            charge_color_kernel(tb, graph, bufs, work, threads, use_ldg=use_ldg)
        profiles.append(device.commit(tb))

        # ---- conflict kernel: scan this round's vertices, push losers ---
        tb = device.builder(k, launch, name=f"data-conflict-{iterations}")
        tb.load(threads, worklist.in_buffer.addr(threads))
        conflicted = detect_conflicts(graph, colors, work)
        mask = np.zeros(k, dtype=bool)
        mask[np.searchsorted(work, conflicted)] = True
        charge_conflict_kernel(tb, graph, bufs, work, threads, mask, use_ldg=use_ldg)
        charge_compaction(
            tb,
            mask,
            worklist.out_buffer,
            worklist.tail_out,
            use_scan=(worklist_strategy == "scan"),
            thread_ids=threads,
        )
        # Losers keep their stale color until recolored next round, exactly
        # as the pseudocode does (the mask loop reads color[w] regardless).
        worklist.publish(conflicted)
        profiles.append(device.commit(tb))

        # Host reads the out-worklist size to decide termination / grid dims.
        device.dtoh(4)
        worklist.swap()
        iterations += 1

    scheme = "data-ldg" if use_ldg else "data-base"
    if load_balance:
        scheme += "-lb"
    return ColoringResult(
        colors=colors.astype(COLOR_DTYPE, copy=True),
        scheme=scheme,
        iterations=iterations,
        gpu_time_us=device.timeline.kernel_time_us()
        + device.timeline.launch_overhead_us(device.config),
        transfer_time_us=device.timeline.transfer_time_us(),
        num_kernel_launches=device.timeline.num_launches(),
        profiles=profiles,
        extra={
            "block_size": block_size,
            "use_ldg": use_ldg,
            "worklist_strategy": worklist_strategy,
            "load_balance": load_balance,
        },
    )
