"""Algorithm 5: data-driven speculative-greedy coloring (D-base/D-ldg).

Threads are created in proportion to the worklist, so no lane idles on an
already-colored vertex — the work-efficiency win over Alg. 4.  The price is
worklist maintenance: conflicted vertices must be *compacted* into the out
worklist, and the paper's atomic-reduction optimization (Fig. 5) does that
with a block-level prefix sum plus one global ``atomicAdd`` per block
instead of one per pushed vertex.

Double buffering (Nasre et al.): ``W_in``/``W_out`` swap by pointer at the
end of every round — no copying.  The round loop lives in
:mod:`repro.engine`; :class:`DataDrivenRecipe` declares one round's
kernels and swaps the worklist in its ``post_round`` hook (after the
engine's tail-counter readback, exactly where the CUDA host code swaps).
"""

from __future__ import annotations

import numpy as np

from ..engine.runner import RoundStatus, SchemeOutcome, SchemeRecipe, run_scheme
from ..gpusim.config import LaunchConfig
from ..graph.csr import CSRGraph
from ..primitives.compact import charge_compaction
from ..primitives.worklist import DoubleBufferedWorklist
from .base import COLOR_DTYPE, ColoringResult
from .kernels import (
    Expansion,
    charge_color_kernel,
    charge_color_kernel_lb,
    charge_conflict_kernel,
    detect_conflicts,
    speculative_color_waved,
    warp_lb_layout,
)

__all__ = ["DataDrivenRecipe", "color_data_driven"]


class DataDrivenRecipe(SchemeRecipe):
    """Alg. 5 as an engine recipe: worklist-sized kernels plus compaction."""

    def __init__(
        self,
        *,
        use_ldg: bool = False,
        block_size: int = 128,
        worklist_strategy: str = "scan",
        load_balance: bool = False,
    ) -> None:
        if worklist_strategy not in ("scan", "atomic"):
            raise ValueError("worklist_strategy must be 'scan' or 'atomic'")
        self.use_ldg = use_ldg
        self.block_size = block_size
        self.worklist_strategy = worklist_strategy
        self.load_balance = load_balance

    @property
    def scheme(self) -> str:
        name = "data-ldg" if self.use_ldg else "data-base"
        if self.load_balance:
            name += "-lb"
        return name

    def setup(self, ex, graph, bufs) -> None:
        self.ex = ex
        self.graph = graph
        self.bufs = bufs
        self.launch = LaunchConfig(block_size=self.block_size)
        self.colors = bufs.colors.data
        self.worklist = DoubleBufferedWorklist(ex, capacity=max(graph.num_vertices, 1))
        self.worklist.initialize(np.arange(graph.num_vertices, dtype=np.int64))
        self.wave_threads = ex.race_window(self.launch)

    def has_work(self) -> bool:
        return len(self.worklist) > 0

    def round(self, iteration: int) -> RoundStatus:
        ex, graph, bufs = self.ex, self.graph, self.bufs
        worklist = self.worklist
        work = worklist.items()  # vertex ids, compact
        k = work.size
        threads = np.arange(k, dtype=np.int64)
        # One expansion of the worklist serves the color step, both charge
        # passes and the conflict scan (formerly four re-expansions); its
        # memo additionally shares the coalesced streams the two charge
        # kernels replay against the same arrays.
        work_exp = Expansion(graph, work)
        win_addr = worklist.in_buffer.addr(threads)

        # ---- coloring kernel: k threads, one per worklist entry ---------
        if self.load_balance:
            layout = warp_lb_layout(graph, work, ex.warp_size)
            color_tb = ex.builder(
                layout.num_threads, self.launch, name=f"data-color-{iteration}"
            )
            color_tb.load(threads, win_addr, memo=work_exp.memo)  # W_in reads
            speculative_color_waved(
                graph, self.colors, work, self.wave_threads,
                expansion=work_exp, scratch=self.scratch,
            )
            charge_color_kernel_lb(color_tb, graph, bufs, layout, use_ldg=self.use_ldg)
        else:
            color_tb = ex.builder(k, self.launch, name=f"data-color-{iteration}")
            color_tb.load(threads, win_addr, memo=work_exp.memo)  # W_in[tid]
            speculative_color_waved(
                graph, self.colors, work, self.wave_threads,
                expansion=work_exp, scratch=self.scratch,
            )
            charge_color_kernel(
                color_tb, graph, bufs, work, threads, use_ldg=self.use_ldg,
                expansion=work_exp,
            )

        # ---- conflict kernel: scan this round's vertices, push losers ---
        tb = ex.builder(k, self.launch, name=f"data-conflict-{iteration}")
        tb.load(threads, win_addr, memo=work_exp.memo)
        conflicted = detect_conflicts(graph, self.colors, work, expansion=work_exp)
        mask = np.zeros(k, dtype=bool)
        mask[np.searchsorted(work, conflicted)] = True
        charge_conflict_kernel(
            tb, graph, bufs, work, threads, mask, use_ldg=self.use_ldg,
            expansion=work_exp,
        )
        charge_compaction(
            tb,
            mask,
            worklist.out_buffer,
            worklist.tail_out,
            use_scan=(self.worklist_strategy == "scan"),
            thread_ids=threads,
        )
        # Losers keep their stale color until recolored next round, exactly
        # as the pseudocode does (the mask loop reads color[w] regardless).
        worklist.publish(conflicted)
        # Nothing between the two builders touches the timeline, so the
        # pair prices concurrently with unchanged seeds and event order.
        self.profiles.extend(ex.commit_pair(color_tb, tb))
        return RoundStatus(active=int(k), conflicts=int(conflicted.size))

    def post_round(self, iteration: int) -> int:
        # The engine just read the out-worklist tail (grid dims for the
        # next launch); now the host swaps the queue pointers.
        self.worklist.swap()
        return 0

    def finalize(self) -> SchemeOutcome:
        return SchemeOutcome(
            colors=self.colors.astype(COLOR_DTYPE, copy=True),
            extra={
                "block_size": self.block_size,
                "use_ldg": self.use_ldg,
                "worklist_strategy": self.worklist_strategy,
                "load_balance": self.load_balance,
            },
        )

    def cleanup(self) -> None:
        self.worklist.release()

    def uncolored(self) -> int:
        return len(self.worklist)


def color_data_driven(
    graph: CSRGraph,
    *,
    use_ldg: bool = False,
    block_size: int = 128,
    device=None,
    backend=None,
    context=None,
    worklist_strategy: str = "scan",
    load_balance: bool = False,
) -> ColoringResult:
    """Run Alg. 5 through the execution engine.

    Parameters
    ----------
    use_ldg:
        Read-only-cache path for ``R``/``C`` (D-ldg vs D-base).
    block_size:
        CUDA thread-block size.
    device / backend / context:
        Execution substrate (see :func:`~repro.coloring.topo.color_topology_driven`).
    worklist_strategy:
        ``'scan'`` — the paper's optimized push (block prefix sum, one
        atomic per block); ``'atomic'`` — naive one-atomic-per-push
        (the Fig. 5 ablation baseline).
    load_balance:
        Warp-centric mapping for high-degree vertices in the coloring
        kernel (extension addressing the paper's future-work note on
        skewed graphs): one warp strides each hub's adjacency list,
        removing intra-warp imbalance and coalescing the C-array walk.
    """
    recipe = DataDrivenRecipe(
        use_ldg=use_ldg,
        block_size=block_size,
        worklist_strategy=worklist_strategy,
        load_balance=load_balance,
    )
    return run_scheme(graph, recipe, device=device, backend=backend, context=context)
