"""Graph-coloring algorithms: the paper's schemes and their baselines."""

from .api import EVALUATED_SCHEMES, METHODS, SCHEMES, color_graph
from .registry import SchemeInfo, scheme_options, scheme_table_markdown
from .balance import balanced_greedy, rebalance_colors
from .base import ColoringError, ColoringResult, color_class_sizes, count_conflicts
from .csrcolor import color_csrcolor
from .datadriven import color_data_driven
from .dsatur import chromatic_number, dsatur, max_clique_lower_bound
from .distance2 import (
    color_distance2_gpu,
    count_d2_conflicts,
    greedy_distance2,
    validate_distance2,
)
from .dynamic import DynamicColoring
from .gm import color_gm
from .iterated import iterated_greedy
from .grosset import color_three_step_gm
from .jp import color_jp, color_jp_gpu, color_jp_lf
from .ordering import ORDERINGS
from .sequential import greedy_colors_only, greedy_sequential
from .topo import color_topology_driven

__all__ = [
    "EVALUATED_SCHEMES",
    "METHODS",
    "ORDERINGS",
    "SCHEMES",
    "SchemeInfo",
    "scheme_options",
    "scheme_table_markdown",
    "ColoringError",
    "ColoringResult",
    "DynamicColoring",
    "balanced_greedy",
    "color_class_sizes",
    "color_csrcolor",
    "color_data_driven",
    "color_distance2_gpu",
    "dsatur",
    "color_gm",
    "color_graph",
    "color_jp",
    "color_jp_gpu",
    "color_jp_lf",
    "color_three_step_gm",
    "color_topology_driven",
    "chromatic_number",
    "count_conflicts",
    "count_d2_conflicts",
    "greedy_colors_only",
    "greedy_distance2",
    "greedy_sequential",
    "iterated_greedy",
    "max_clique_lower_bound",
    "rebalance_colors",
    "validate_distance2",
]
