"""The cuSPARSE ``csrcolor`` baseline: multi-hash MIS coloring.

Re-implemented from Naumov et al.'s description (the binary is closed
source): instead of JP's random priorities, ``N`` deterministic hash
functions of the vertex id are evaluated per round; for each hash both the
*local maxima* and the *local minima* among still-active neighbors form
independent sets, so one kernel round assigns up to ``2N`` fresh colors.
No conflicts are possible by construction — the speed comes from coloring
a large fraction of the graph per round, and the quality cost is that every
round burns ``2N`` colors whether or not the greedy mex would have reused
old ones.  That is exactly the paper's Fig. 6 observation (4.9–23x the
sequential color count).

Kernel cost model: cuSPARSE relaunches full-range (topology-driven)
kernels; per edge the kernel loads ``C[e]`` and the neighbor's color (to
skip inactive neighbors) and mixes the neighbor id through the hash
functions — register arithmetic with flag-based early exit, charged as a
constant instruction count per trip.  The election loop runs on the
shared engine (:class:`CsrColorRecipe`); the ``fraction`` fast path is the
recipe's ``post_round`` hook.
"""

from __future__ import annotations

import numpy as np

from ..engine.runner import RoundStatus, SchemeOutcome, SchemeRecipe, run_scheme
from ..gpusim.config import LaunchConfig
from ..graph.csr import CSRGraph
from ..primitives.hashing import murmur3_finalize
from .base import COLOR_DTYPE, ColoringResult
from .kernels import Expansion

__all__ = ["CsrColorRecipe", "color_csrcolor", "multi_hash_round"]

_INSTR_PER_EDGE = 8  # id mix + flag updates (early exit amortizes the N hashes)
_INSTR_PER_VERTEX = 10
_INSTR_PER_HASH = 6  # own-id hash evaluation
_INSTR_IDLE_THREAD = 3


def multi_hash_round(
    graph: CSRGraph,
    active_ids: np.ndarray,
    num_hashes: int,
    round_seed: int,
    *,
    compare_all: bool = True,
    expansion: Expansion | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One multi-hash round: per-active-vertex color slot or -1.

    Returns ``(winners, slots)``: the active vertices that won some
    independent set this round and, parallel to them, the slot index in
    ``[0, 2*num_hashes)`` (hash k's maxima take slot 2k, minima 2k+1;
    a vertex winning several sets takes the lowest slot).

    ``compare_all=True`` (the cuSPARSE-matching default) requires a winner
    to beat *every* neighbor's hash, colored or not — the kernel never
    checks neighbor state, which keeps it branch-free but wastes election
    rounds (and therefore colors: each round burns 2N fresh ones).  This
    is the mechanism behind csrcolor's characteristic 5-20x color
    inflation.  ``compare_all=False`` competes against still-active
    neighbors only (the textbook Luby/JP refinement).
    """
    active_ids = np.asarray(active_ids, dtype=np.int64)
    n_active = active_ids.size

    if expansion is None:
        expansion = Expansion(graph, active_ids)
    seg = expansion.seg
    w = expansion.nbr64(graph)
    v = active_ids[seg]
    if compare_all:
        competing = np.ones(w.size, dtype=bool)
    else:
        active_mask = np.zeros(graph.num_vertices, dtype=bool)
        active_mask[active_ids] = True
        competing = active_mask[w]

    best_slot = np.full(n_active, -1, dtype=np.int64)
    for k in range(num_hashes):
        hv = murmur3_finalize(v.astype(np.uint32), seed=round_seed * 131 + k)
        hw = murmur3_finalize(w.astype(np.uint32), seed=round_seed * 131 + k)
        # Ties break by id so colliding hashes never elect two neighbors.
        beaten_max = competing & ((hw > hv) | ((hw == hv) & (w > v)))
        beaten_min = competing & ((hw < hv) | ((hw == hv) & (w < v)))
        is_max = np.ones(n_active, dtype=bool)
        is_max[seg[beaten_max]] = False
        is_min = np.ones(n_active, dtype=bool)
        is_min[seg[beaten_min]] = False
        for slot, mask in ((2 * k, is_max), (2 * k + 1, is_min)):
            take = mask & (best_slot < 0)
            best_slot[take] = slot
    winners = best_slot >= 0
    return active_ids[winners], best_slot[winners]


class CsrColorRecipe(SchemeRecipe):
    """csrcolor as an engine recipe: one election kernel per round."""

    scheme = "csrcolor"

    def __init__(
        self,
        *,
        num_hashes: int = 3,
        block_size: int = 128,
        seed: int = 0,
        compare_all: bool = True,
        fraction: float = 1.0,
    ) -> None:
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.num_hashes = num_hashes
        self.block_size = block_size
        self.seed = seed
        self.compare_all = compare_all
        self.fraction = fraction

    def setup(self, ex, graph, bufs) -> None:
        self.ex = ex
        self.graph = graph
        self.bufs = bufs
        self.launch = LaunchConfig(block_size=self.block_size)
        self.colors = bufs.colors.data
        self.active = np.arange(graph.num_vertices, dtype=np.int64)
        self.base = 0

    def has_work(self) -> bool:
        return self.active.size > 0

    def round(self, iteration: int) -> RoundStatus:
        ex, graph, bufs = self.ex, self.graph, self.bufs
        n = graph.num_vertices
        active = self.active
        # One expansion of the active set serves the election and the charge.
        active_exp = Expansion(graph, active)
        winners, slots = multi_hash_round(
            graph, active, self.num_hashes, self.seed + iteration + 1,
            compare_all=self.compare_all, expansion=active_exp,
        )

        # --- kernel charge: full-range launch, actives do the edge loop ---
        tb = ex.builder(n, self.launch, name=f"csrcolor-{iteration}")
        seg, step, edge_idx = active_exp.seg, active_exp.step, active_exp.edge_idx
        t_of_edge = active[seg]
        tb.load(active, bufs.R.addr(active))
        tb.load(active, bufs.R.addr(active + 1))
        tb.load(active, bufs.colors.addr(active))
        tb.load(t_of_edge, bufs.C.addr(edge_idx), step=step)
        tb.load(t_of_edge, bufs.colors.addr(active_exp.nbr32(graph)), step=step)
        if winners.size:
            tb.store(winners, bufs.colors.addr(winners))
        tb.instructions(active, active_exp.lens * _INSTR_PER_EDGE)
        tb.instructions(active, _INSTR_PER_VERTEX + _INSTR_PER_HASH * self.num_hashes)
        tb.uniform_overhead(_INSTR_IDLE_THREAD)
        tb.activate(active.size)

        self.colors[winners] = self.base + slots + 1
        self.base += 2 * self.num_hashes
        self.profiles.append(ex.commit(tb))
        # (The engine charges the remaining-count readback.)

        self.active = active[self.colors[active] == 0]
        return RoundStatus(active=int(active.size), conflicts=int(self.active.size))

    def post_round(self, iteration: int) -> int:
        # Fraction fast path: uniquely color the stragglers and stop.
        ex, graph, bufs = self.ex, self.graph, self.bufs
        active = self.active
        n = graph.num_vertices
        if not (active.size and active.size <= (1.0 - self.fraction) * n):
            return 0
        tb = ex.builder(n, self.launch, name=f"csrcolor-tail-{iteration}")
        tb.load(active, bufs.colors.addr(active))
        tb.store(active, bufs.colors.addr(active))
        tb.instructions(active, 6)
        tb.uniform_overhead(_INSTR_IDLE_THREAD)
        tb.activate(active.size)
        self.colors[active] = self.base + np.arange(active.size, dtype=np.int64) + 1
        self.profiles.append(ex.commit(tb))
        self.active = active[:0]
        return 1

    def finalize(self) -> SchemeOutcome:
        # cuSPARSE renumbers colors densely before returning (used slots only).
        used = np.unique(self.colors)
        remap = np.zeros(int(used.max()) + 1, dtype=COLOR_DTYPE)
        remap[used] = np.arange(1, used.size + 1, dtype=COLOR_DTYPE)
        return SchemeOutcome(
            colors=remap[self.colors],
            extra={
                "num_hashes": self.num_hashes,
                "block_size": self.block_size,
                "compare_all": self.compare_all,
                "fraction": self.fraction,
            },
        )

    def uncolored(self) -> int:
        return int(self.active.size)


def color_csrcolor(
    graph: CSRGraph,
    *,
    num_hashes: int = 3,
    block_size: int = 128,
    device=None,
    backend=None,
    context=None,
    seed: int = 0,
    compare_all: bool = True,
    fraction: float = 1.0,
) -> ColoringResult:
    """Run the multi-hash MIS scheme through the execution engine.

    Defaults (3 hashes/round, compare against all neighbors) are calibrated
    so color inflation and runtime track the paper's csrcolor measurements;
    both are exposed for the csrcolor ablation benchmark.

    ``fraction`` mirrors cuSPARSE's ``fractionToColor``: once at least that
    fraction of the vertices is colored, the election rounds stop and every
    straggler takes a fresh unique color in one final kernel — the fast
    path cuSPARSE uses to avoid grinding down the hub tail.
    """
    recipe = CsrColorRecipe(
        num_hashes=num_hashes,
        block_size=block_size,
        seed=seed,
        compare_all=compare_all,
        fraction=fraction,
    )
    return run_scheme(graph, recipe, device=device, backend=backend, context=context)
