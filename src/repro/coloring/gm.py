"""Algorithm 2: the Gebremedhin–Manne speculative scheme (CPU-parallel form).

This is the multicore ancestor of the paper's GPU schemes (Çatalyürek et
al.'s OpenMP formulation): color everything speculatively in parallel,
detect conflicts, re-run on the conflicted remainder.  It doubles as the
algorithmic reference the GPU variants are validated against — same
rounds, same tie-break — and, with ``cores`` set, as the priced
OpenMP-on-Xeon baseline of the Background-section comparison.

The "parallel for" is modelled as a bulk-synchronous step over the cores:
within a round every vertex reads the round-entry snapshot of the color
array, which is the worst case for conflicts (real CPUs interleave and
see fresher values; convergence differs by at most a round or two).
"""

from __future__ import annotations

import numpy as np

from ..cpusim.model import MulticoreCPU
from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringResult
from .kernels import Expansion, detect_conflicts, speculative_color_step

__all__ = ["color_gm"]

_MAX_ITERATIONS = 10_000
_INSTR_PER_EDGE = 5
_INSTR_PER_VERTEX = 14


def _sequential_on_view(
    graph: CSRGraph, view: np.ndarray, chunk: np.ndarray
) -> np.ndarray:
    """One core's share: sequential greedy over ``chunk`` against ``view``.

    ``view`` holds the round-entry snapshot plus this core's own commits —
    exactly what an OpenMP thread sees while its siblings run.
    """
    R, C = graph.row_offsets, graph.col_indices
    color_mask = np.full(graph.max_degree + 2, -1, dtype=np.int64)
    out = np.empty(chunk.size, dtype=COLOR_DTYPE)
    for i, v in enumerate(chunk):
        v = int(v)
        color_mask[view[C[R[v] : R[v + 1]]]] = v
        c = 1
        while color_mask[c] == v:
            c += 1
        view[v] = c
        out[i] = c
    return out


def color_gm(graph: CSRGraph, *, cores: int | None = None) -> ColoringResult:
    """Run the GM speculation loop.

    Parameters
    ----------
    cores:
        If given, run with the OpenMP execution model — each core colors a
        contiguous chunk of the worklist *sequentially* (its own commits
        are visible to itself; siblings see the round-entry snapshot), so
        conflicts only arise across chunk boundaries — and price the run
        on a simulated ``cores``-way Xeon.  Without ``cores``, run the
        bulk-synchronous full-snapshot reference (worst-case conflicts, no
        timing) used by the validation suite.
    """
    n = graph.num_vertices
    colors = np.zeros(n, dtype=COLOR_DTYPE)
    work = np.arange(n, dtype=np.int64)
    cpu = MulticoreCPU(cores=cores) if cores else None
    iterations = 0
    while work.size:
        if iterations >= _MAX_ITERATIONS:
            raise RuntimeError("GM coloring failed to converge")
        # One expansion of the worklist serves the color step, the conflict
        # scan and both pricing passes.
        work_exp = Expansion(graph, work)
        if cores:
            snapshot = colors.copy()
            chunks = np.array_split(work, cores)
            fresh: list[np.ndarray] = []
            for chunk in chunks:
                view = snapshot.copy()
                fresh.append(_sequential_on_view(graph, view, chunk))
            for chunk, vals in zip(chunks, fresh):
                colors[chunk] = vals
            _charge_round(cpu, graph, work, f"gm-color-{iterations}", work_exp)
        else:
            colors[work] = speculative_color_step(
                graph, colors, work, expansion=work_exp
            )
        conflicted = detect_conflicts(graph, colors, work, expansion=work_exp)
        if cpu is not None:
            _charge_round(cpu, graph, work, f"gm-conflict-{iterations}", work_exp)
        work = conflicted
        iterations += 1
    return ColoringResult(
        colors=colors,
        scheme=f"gm-{cores}core" if cores else "gm",
        iterations=iterations,
        cpu_time_us=cpu.total_time_us() if cpu else 0.0,
        extra={"cores": cores},
    )


def _charge_round(
    cpu: MulticoreCPU,
    graph: CSRGraph,
    work: np.ndarray,
    name: str,
    expansion: Expansion | None = None,
) -> None:
    """Price one parallel region: the work set's neighbor-color gathers."""
    if expansion is None:
        expansion = Expansion(graph, work)
    addresses = expansion.nbr64(graph) * 4
    m_work = int(expansion.edge_idx.size)
    cpu.run_parallel(
        name,
        instructions=_INSTR_PER_VERTEX * int(work.size) + _INSTR_PER_EDGE * m_work,
        addresses=addresses,
        sequential_bytes=work.size * 12,  # R bounds + worklist entries
    )
