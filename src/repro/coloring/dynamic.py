"""Incremental coloring maintenance under graph mutation (extension).

Morph workloads (Nasre et al.'s other irregular-algorithm class) mutate
the graph while computing on it; recoloring from scratch per edit wastes
the existing coloring.  :class:`DynamicColoring` maintains a proper
coloring across edge insertions/deletions and vertex additions with
local repair:

* **insert(u, v)**: if the endpoints clash, the endpoint with the smaller
  saturated neighborhood recolors to its mex; colors only grow when the
  neighborhood truly forces it.
* **delete(u, v)**: never breaks properness; optionally *improves* the
  endpoints greedily (they may now fit a smaller color).
* **add_vertex()**: appends an isolated vertex with color 1.

The adjacency is held in per-vertex sorted arrays (amortized O(deg) per
edit); :meth:`to_graph` exports a CSRGraph snapshot for the static
algorithms and verification.
"""

from __future__ import annotations

import numpy as np

from ..graph.builder import from_edges
from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringError

__all__ = ["DynamicColoring"]


class DynamicColoring:
    """A proper coloring maintained across graph edits."""

    def __init__(self, graph: CSRGraph | None = None, colors: np.ndarray | None = None):
        if graph is None:
            self._adj: list[np.ndarray] = []
            self._colors: list[int] = []
        else:
            self._adj = [graph.neighbors(v).astype(np.int64).copy()
                         for v in range(graph.num_vertices)]
            if colors is None:
                from .sequential import greedy_colors_only

                colors = greedy_colors_only(graph)
            colors = np.asarray(colors)
            if colors.shape != (graph.num_vertices,):
                raise ValueError("colors must have one entry per vertex")
            self._colors = [int(c) for c in colors]
            self._check_proper()

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_colors(self) -> int:
        return max(self._colors, default=0)

    def color_of(self, v: int) -> int:
        return self._colors[v]

    def colors(self) -> np.ndarray:
        return np.asarray(self._colors, dtype=COLOR_DTYPE)

    def degree(self, v: int) -> int:
        return int(self._adj[v].size)

    def has_edge(self, u: int, v: int) -> bool:
        self._check_ids(u, v)
        idx = np.searchsorted(self._adj[u], v)
        return idx < self._adj[u].size and self._adj[u][idx] == v

    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id."""
        self._adj.append(np.empty(0, dtype=np.int64))
        self._colors.append(1)
        return len(self._adj) - 1

    def insert(self, u: int, v: int) -> int | None:
        """Insert edge (u, v); returns the recolored endpoint, if any."""
        self._check_ids(u, v)
        if u == v:
            raise ValueError("self-loops are not colorable")
        if self.has_edge(u, v):
            return None
        self._adj[u] = np.insert(self._adj[u], np.searchsorted(self._adj[u], v), v)
        self._adj[v] = np.insert(self._adj[v], np.searchsorted(self._adj[v], u), u)
        if self._colors[u] != self._colors[v]:
            return None
        # Repair: recolor the endpoint whose neighborhood leaves the
        # smallest mex (ties toward the lower degree — cheaper rescan).
        cand = min((u, v), key=lambda x: (self._mex(x), self.degree(x)))
        self._colors[cand] = self._mex(cand)
        return cand

    def delete(self, u: int, v: int, *, improve: bool = True) -> None:
        """Remove edge (u, v); optionally shrink the endpoints' colors."""
        self._check_ids(u, v)
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) not present")
        self._adj[u] = np.delete(self._adj[u], np.searchsorted(self._adj[u], v))
        self._adj[v] = np.delete(self._adj[v], np.searchsorted(self._adj[v], u))
        if improve:
            for x in (u, v):
                m = self._mex(x)
                if m < self._colors[x]:
                    self._colors[x] = m

    # ------------------------------------------------------------------
    def _mex(self, v: int) -> int:
        used = set(self._colors[int(w)] for w in self._adj[v])
        c = 1
        while c in used:
            c += 1
        return c

    def _check_ids(self, *ids: int) -> None:
        for x in ids:
            if not 0 <= x < len(self._adj):
                raise IndexError(f"vertex {x} out of range")

    def _check_proper(self) -> None:
        for v, nbrs in enumerate(self._adj):
            for w in nbrs:
                if self._colors[v] == self._colors[int(w)]:
                    raise ColoringError(
                        f"input coloring is improper at edge ({v}, {int(w)})"
                    )

    # ------------------------------------------------------------------
    def to_graph(self, *, name: str = "dynamic") -> CSRGraph:
        """Snapshot the current topology as an immutable CSRGraph."""
        us, vs = [], []
        for v, nbrs in enumerate(self._adj):
            if nbrs.size:
                us.append(np.full(nbrs.size, v, dtype=np.int64))
                vs.append(nbrs)
        if us:
            u = np.concatenate(us)
            w = np.concatenate(vs)
        else:
            u = w = np.empty(0, dtype=np.int64)
        return from_edges(
            u, w, num_vertices=len(self._adj), symmetrize=False, name=name
        )

    def validate(self) -> None:
        """Raise unless the maintained coloring is proper and complete."""
        if any(c <= 0 for c in self._colors):
            raise ColoringError("uncolored vertex in dynamic coloring")
        self._check_proper()
