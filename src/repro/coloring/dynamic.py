"""Incremental coloring maintenance under graph mutation.

Morph workloads (Nasre et al.'s other irregular-algorithm class) mutate
the graph while computing on it; recoloring from scratch per edit wastes
the existing coloring.  :class:`DynamicColoring` maintains a proper
coloring across edge insertions/deletions and vertex additions with
local repair:

* **insert(u, v)**: if the endpoints clash, the endpoint with the smaller
  saturated neighborhood recolors to its mex; colors only grow when the
  neighborhood truly forces it.
* **delete(u, v)**: never breaks properness; optionally *improves* the
  endpoints greedily, then re-examines the neighbors of any endpoint
  that actually shrank (its old color may have been the only thing
  keeping a neighbor high).
* **add_vertex()**: appends an isolated vertex with color 1.
* **apply(edits)**: batch edit application — topology changes land
  first, then one *dirty-neighborhood repair* pass fixes every clash at
  once using the engine's vectorized mex kernel
  (:func:`~repro.coloring.kernels.min_excluded_colors`) in speculative
  waves, exactly the paper's color/conflict round structure shrunk to
  the dirty frontier.

The typed surface (PR 8): the constructor accepts a
:class:`~repro.coloring.base.ColoringResult` (and a
:class:`~repro.engine.config.RunConfig` for full recolors); batch ops
and :meth:`result` return :class:`ColoringResult` with the same
versioned ``to_dict(schema_version=1)`` mapping as ``color_graph``.
The old bare-``colors``-array constructor shape still works behind a
:class:`DeprecationWarning` shim.

Quality drift: local repair can only grow the palette, so
``max_drift=k`` arms *compaction* — when the maintained palette exceeds
the last full recolor's by more than ``k`` colors, :meth:`recolor` runs
from scratch and resets the baseline.  The service session layer
(:mod:`repro.service`) drives the same policy through the engine pool.

The adjacency is held in per-vertex sorted arrays (amortized O(deg) per
edit); :meth:`to_graph` exports a CSRGraph snapshot for the static
algorithms and verification.
"""

from __future__ import annotations

import numpy as np

from ..graph.builder import from_edges
from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringError, ColoringResult

__all__ = ["DynamicColoring", "normalize_edits"]

#: Edit kinds accepted by :meth:`DynamicColoring.apply`.
EDIT_KINDS = ("insert", "delete", "add_vertex")


def _warn_colors_array(where: str) -> None:
    from ..deprecation import warn_once

    warn_once(
        "dynamic-colors-array",
        f"{where} with a bare colors array is deprecated; pass the "
        f"ColoringResult a scheme returned (typed surface) instead",
        stage="deprecated",
    )


def normalize_edits(edits) -> list[tuple]:
    """Validate an edit stream into ``(kind, ...)`` tuples.

    Accepted forms: ``("insert", u, v)``, ``("delete", u, v)``,
    ``("add_vertex",)``.  Malformed entries raise :class:`ValueError`
    up front, before any topology mutates.
    """
    out = []
    for edit in edits:
        edit = tuple(edit)
        if not edit or edit[0] not in EDIT_KINDS:
            raise ValueError(
                f"unknown edit {edit!r}; expected ('insert', u, v), "
                f"('delete', u, v), or ('add_vertex',)"
            )
        if edit[0] == "add_vertex":
            if len(edit) != 1:
                raise ValueError(f"add_vertex takes no operands: {edit!r}")
        elif len(edit) != 3:
            raise ValueError(f"{edit[0]} takes two endpoints: {edit!r}")
        else:
            edit = (edit[0], int(edit[1]), int(edit[2]))
        out.append(edit)
    return out


class DynamicColoring:
    """A proper coloring maintained across graph edits.

    Parameters
    ----------
    graph:
        Optional starting topology (a :class:`~repro.graph.csr.CSRGraph`);
        omit to grow a graph from nothing via :meth:`add_vertex`.
    coloring:
        Optional starting coloring: a :class:`ColoringResult` (the typed
        surface) — or a bare color array, which still works behind a
        :class:`DeprecationWarning`.  Default: a fresh coloring of
        ``graph`` via ``method``/``config``.
    method:
        Scheme used for fresh colorings and full recolors
        (:meth:`recolor`); the sequential greedy default skips the
        engine entirely.
    config:
        A :class:`~repro.engine.config.RunConfig` (or mapping) forwarded
        to ``color_graph`` for non-sequential fresh colorings and
        recolors.
    max_drift:
        Arm auto-compaction: after :meth:`apply`, if the palette exceeds
        the last full recolor's by more than this many colors, recolor
        from scratch.  ``None`` (default) never auto-compacts.
    """

    def __init__(
        self,
        graph: CSRGraph | None = None,
        coloring=None,
        *,
        method: str = "sequential",
        config=None,
        max_drift: int | None = None,
        colors: np.ndarray | None = None,
    ):
        if colors is not None:
            _warn_colors_array("DynamicColoring(colors=...)")
            if coloring is None:
                coloring = colors
        from ..engine.config import resolve_run_config

        self._method = method
        self._config = resolve_run_config(config)
        self._max_drift = max_drift
        self._version = 0
        self._repaired = 0
        self._improved = 0
        self._compactions = 0
        if graph is None:
            self._adj: list[np.ndarray] = []
            self._colors = np.zeros(0, dtype=COLOR_DTYPE)
        else:
            self._adj = [graph.neighbors(v).astype(np.int64).copy()
                         for v in range(graph.num_vertices)]
            if coloring is None:
                arr = self._fresh_colors(graph)
            elif isinstance(coloring, ColoringResult):
                arr = coloring.colors
            else:
                _warn_colors_array("DynamicColoring(graph, <array>)")
                arr = np.asarray(coloring)
            if arr.shape != (graph.num_vertices,):
                raise ValueError("colors must have one entry per vertex")
            self._colors = arr.astype(COLOR_DTYPE).copy()
            self._check_proper(graph)
        self._baseline = self.num_colors

    def _fresh_colors(self, graph: CSRGraph) -> np.ndarray:
        if self._method == "sequential" and self._config is None:
            from .sequential import greedy_colors_only

            return greedy_colors_only(graph)
        from .api import color_graph

        return color_graph(
            graph, self._method, config=self._config, validate=False
        ).colors

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_colors(self) -> int:
        return int(self._colors.max()) if self._colors.size else 0

    @property
    def version(self) -> int:
        """Monotone edit-batch counter (bumps once per mutating call)."""
        return self._version

    @property
    def baseline_colors(self) -> int:
        """Palette size at the last full (re)coloring — the drift anchor."""
        return self._baseline

    def color_of(self, v: int) -> int:
        return int(self._colors[v])

    def colors(self) -> np.ndarray:
        return self._colors.copy()

    def degree(self, v: int) -> int:
        return int(self._adj[v].size)

    def has_edge(self, u: int, v: int) -> bool:
        self._check_ids(u, v)
        idx = np.searchsorted(self._adj[u], v)
        return idx < self._adj[u].size and self._adj[u][idx] == v

    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id."""
        vid = self._add_vertex_raw()
        self._version += 1
        return vid

    def _add_vertex_raw(self) -> int:
        self._adj.append(np.empty(0, dtype=np.int64))
        self._colors = np.append(self._colors, COLOR_DTYPE(1))
        return len(self._adj) - 1

    def insert(self, u: int, v: int) -> int | None:
        """Insert edge (u, v); returns the recolored endpoint, if any."""
        self._version += 1
        if not self._insert_raw(u, v):
            return None
        if self._colors[u] != self._colors[v]:
            return None
        # Repair: recolor the endpoint whose neighborhood leaves the
        # smallest mex (ties toward the lower degree — cheaper rescan).
        cand = min((u, v), key=lambda x: (self._mex(x), self.degree(x)))
        self._colors[cand] = self._mex(cand)
        self._repaired += 1
        return cand

    def _insert_raw(self, u: int, v: int) -> bool:
        """Topology-only insert; True when the edge is new."""
        self._check_ids(u, v)
        if u == v:
            raise ValueError("self-loops are not colorable")
        if self.has_edge(u, v):
            return False
        self._adj[u] = np.insert(self._adj[u], np.searchsorted(self._adj[u], v), v)
        self._adj[v] = np.insert(self._adj[v], np.searchsorted(self._adj[v], u), u)
        return True

    def delete(self, u: int, v: int, *, improve: bool = True) -> None:
        """Remove edge (u, v); optionally shrink colors nearby.

        With ``improve=True`` both endpoints greedily take their mex when
        it shrank, and the *neighbors* of any endpoint that improved are
        re-examined too: the endpoint's old color may have been the only
        color pinning a neighbor above its own mex.  (Historical bug:
        only the endpoints were examined, leaving reachable one-hop
        improvements on the table.)
        """
        self._version += 1
        self._delete_raw(u, v)
        if improve:
            self._improve_pass((u, v))

    def _delete_raw(self, u: int, v: int) -> None:
        self._check_ids(u, v)
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) not present")
        self._adj[u] = np.delete(self._adj[u], np.searchsorted(self._adj[u], v))
        self._adj[v] = np.delete(self._adj[v], np.searchsorted(self._adj[v], u))

    def _improve_pass(self, candidates) -> int:
        """Greedy color shrinking, one neighbor level deep.

        Sequential on purpose: two adjacent vertices improved from the
        same snapshot could both claim the same smaller color.  Returns
        the number of vertices whose color shrank.
        """
        improved = []
        for x in dict.fromkeys(int(c) for c in candidates):
            m = self._mex(x)
            if m < self._colors[x]:
                self._colors[x] = m
                improved.append(x)
        # One level out: freeing x's old color can unlock its neighbors.
        for x in list(improved):
            for w in self._adj[x]:
                w = int(w)
                m = self._mex(w)
                if m < self._colors[w]:
                    self._colors[w] = m
                    improved.append(w)
        self._improved += len(improved)
        return len(improved)

    # ------------------------------------------------------------- batch
    def apply(self, edits, *, improve: bool = True) -> ColoringResult:
        """Apply an edit batch, then repair the dirty neighborhood once.

        Topology changes land first; clashing insert endpoints seed a
        dirty worklist that the engine-kernel repair loop
        (:meth:`_repair`) recolors in speculative waves; deleted-edge
        endpoints get the greedy improvement pass.  Auto-compaction runs
        afterwards when armed (``max_drift``).  Returns the versioned
        typed result snapshot (``extra["dynamic"]`` carries the batch
        report: counts of repaired/improved vertices, added vertex ids,
        whether compaction fired).
        """
        edits = normalize_edits(edits)
        dirty: set[int] = set()
        shrink: set[int] = set()
        added: list[int] = []
        for edit in edits:
            if edit[0] == "add_vertex":
                added.append(self._add_vertex_raw())
            elif edit[0] == "insert":
                _, u, v = edit
                if self._insert_raw(u, v) and self._colors[u] == self._colors[v]:
                    # Seed the cheaper endpoint, like the single-op path.
                    dirty.add(min((u, v),
                                  key=lambda x: (self._mex(x), self.degree(x))))
            else:
                _, u, v = edit
                self._delete_raw(u, v)
                if improve:
                    shrink.update((u, v))
        repaired = self._repair(dirty)
        improved = self._improve_pass(shrink) if shrink else 0
        self._version += 1
        compacted = self._maybe_compact()
        return self.result(
            op="apply", edits=len(edits), repaired=repaired,
            improved=improved, added=added, compacted=compacted,
        )

    def _repair(self, dirty) -> int:
        """Speculative dirty-neighborhood repair (engine-kernel rounds).

        Each round expands the worklist's adjacency into one CSR-shaped
        segment stream, takes the vectorized
        :func:`~repro.coloring.kernels.min_excluded_colors` per segment,
        and commits every clashing vertex at once.  Two adjacent dirty
        vertices can speculatively pick the same color — the paper's
        conflict rule (lower id keeps, higher id requeues) feeds the
        next round, so each conflict component settles its minimum per
        round and the loop terminates.
        """
        if not dirty:
            return 0
        from .kernels import min_excluded_colors

        work = np.fromiter(sorted(dirty), count=len(dirty), dtype=np.int64)
        repaired = 0
        while work.size:
            lens = np.fromiter(
                (self._adj[v].size for v in work), count=work.size,
                dtype=np.int64,
            )
            nbrs = (
                np.concatenate([self._adj[v] for v in work])
                if int(lens.sum()) else np.empty(0, dtype=np.int64)
            )
            seg = np.repeat(np.arange(work.size, dtype=np.int64), lens)
            nbr_colors = self._colors[nbrs]
            own = self._colors[work]
            clash = np.zeros(work.size, dtype=bool)
            np.logical_or.at(clash, seg, nbr_colors == own[seg])
            if not clash.any():
                break
            mex = min_excluded_colors(
                seg, nbr_colors, work.size, assume_sorted=True
            )
            self._colors[work[clash]] = mex[clash]
            repaired += int(clash.sum())
            # Conflict detection, dirty-frontier scale: a vertex requeues
            # only when it still clashes with a *lower-id* neighbor (the
            # keeper); everyone else is settled.
            work = np.array(
                [
                    int(v) for v in work[clash]
                    if np.any(
                        (self._colors[self._adj[v]] == self._colors[v])
                        & (self._adj[v] < v)
                    )
                ],
                dtype=np.int64,
            )
        self._repaired += repaired
        return repaired

    # ------------------------------------------------------- compaction
    def _maybe_compact(self) -> bool:
        if self._max_drift is None:
            return False
        if self.num_colors <= self._baseline + self._max_drift:
            return False
        self.recolor()
        return True

    def recolor(self, *, method: str | None = None, config=None) -> ColoringResult:
        """Full from-scratch recolor of the current topology (compaction).

        Resets the drift baseline; ``method``/``config`` default to the
        constructor's.  Returns the typed snapshot.
        """
        from ..engine.config import resolve_run_config

        saved = (self._method, self._config)
        if method is not None:
            self._method = method
        if config is not None:
            self._config = resolve_run_config(config)
        try:
            fresh = self._fresh_colors(self.to_graph())
        finally:
            self._method, self._config = saved if method is None and config is None else (
                self._method, self._config
            )
        self._colors = fresh.astype(COLOR_DTYPE).copy()
        self._version += 1
        self._compactions += 1
        self._baseline = self.num_colors
        return self.result(op="recolor")

    def adopt(self, coloring) -> None:
        """Replace the maintained colors with a full-recolor result.

        The service session layer routes compaction through the engine
        pool and hands the :class:`ColoringResult` back here; the drift
        baseline resets to the adopted palette.  Bare arrays go through
        the same deprecation shim as the constructor.
        """
        if isinstance(coloring, ColoringResult):
            arr = coloring.colors
        else:
            _warn_colors_array("DynamicColoring.adopt(<array>)")
            arr = np.asarray(coloring)
        if arr.shape != (self.num_vertices,):
            raise ValueError("adopted colors must have one entry per vertex")
        self._colors = arr.astype(COLOR_DTYPE).copy()
        self._check_proper()
        self._version += 1
        self._compactions += 1
        self._baseline = self.num_colors

    # ------------------------------------------------------------------
    def result(self, *, op: str = "snapshot", **report) -> ColoringResult:
        """The versioned typed snapshot of the maintained coloring.

        Same surface as ``color_graph``: a :class:`ColoringResult` whose
        ``to_dict(schema_version=1)`` carries the documented mapping;
        ``iterations`` is the edit-batch version, ``extra["dynamic"]``
        the maintenance report.
        """
        res = ColoringResult(
            colors=self.colors(),
            scheme=f"dynamic:{self._method}",
            iterations=self._version,
        )
        res.extra["dynamic"] = {
            "op": op,
            "version": self._version,
            "num_vertices": self.num_vertices,
            "num_colors": self.num_colors,
            "baseline_colors": self._baseline,
            "repaired": self._repaired,
            "improved": self._improved,
            "compactions": self._compactions,
            **report,
        }
        return res

    # ------------------------------------------------------------------
    def _mex(self, v: int) -> int:
        nbr = self._colors[self._adj[v]]
        nbr = nbr[nbr > 0]
        if nbr.size == 0:
            return 1
        seen = np.zeros(int(nbr.max()) + 2, dtype=bool)
        seen[nbr] = True
        return int(np.argmin(seen[1:])) + 1

    def _check_ids(self, *ids: int) -> None:
        for x in ids:
            if not 0 <= x < len(self._adj):
                raise IndexError(f"vertex {x} out of range")

    def _check_proper(self, graph: CSRGraph | None = None) -> None:
        from .base import count_conflicts

        graph = graph if graph is not None else self.to_graph()
        conflicts = count_conflicts(graph, self._colors)
        if conflicts:
            raise ColoringError(
                f"input coloring is improper: {conflicts} conflicting edge(s)"
            )

    # ------------------------------------------------------------------
    def to_graph(self, *, name: str = "dynamic") -> CSRGraph:
        """Snapshot the current topology as an immutable CSRGraph."""
        us, vs = [], []
        for v, nbrs in enumerate(self._adj):
            if nbrs.size:
                us.append(np.full(nbrs.size, v, dtype=np.int64))
                vs.append(nbrs)
        if us:
            u = np.concatenate(us)
            w = np.concatenate(vs)
        else:
            u = w = np.empty(0, dtype=np.int64)
        return from_edges(
            u, w, num_vertices=len(self._adj), symmetrize=False, name=name
        )

    def validate(self) -> None:
        """Raise unless the maintained coloring is proper and complete."""
        if bool((self._colors <= 0).any()):
            raise ColoringError("uncolored vertex in dynamic coloring")
        self._check_proper()
