"""Vertex ordering heuristics for greedy coloring.

Greedy's color count depends on the visit order.  The paper's sequential
baseline is First Fit (natural order); the classical alternatives trade
more ordering work for fewer colors (Welsh–Powell largest-first,
Matula–Beck smallest-last, incidence degree).  These feed the sequential
baseline and the ordering-ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "natural_order",
    "random_order",
    "largest_degree_first",
    "smallest_degree_last",
    "incidence_degree_order",
    "ORDERINGS",
]


def natural_order(graph: CSRGraph, *, seed: int = 0) -> np.ndarray:
    """Vertices in id order (First Fit)."""
    return np.arange(graph.num_vertices, dtype=np.int64)


def random_order(graph: CSRGraph, *, seed: int = 0) -> np.ndarray:
    """Uniformly random permutation."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_vertices).astype(np.int64)


def largest_degree_first(graph: CSRGraph, *, seed: int = 0) -> np.ndarray:
    """Welsh–Powell: non-increasing degree (stable for determinism)."""
    return np.argsort(-graph.degrees.astype(np.int64), kind="stable")


def smallest_degree_last(graph: CSRGraph, *, seed: int = 0) -> np.ndarray:
    """Matula–Beck smallest-last ordering.

    Repeatedly remove a minimum-degree vertex; coloring in the *reverse*
    removal order guarantees at most ``1 + max core number`` colors.
    Implemented with a bucket queue: O(n + m).
    """
    n = graph.num_vertices
    degs = graph.degrees.astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    max_deg = int(degs.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degs[v]].append(v)
    order = np.empty(n, dtype=np.int64)
    cursor = 0  # lowest possibly-non-empty bucket
    R, C = graph.row_offsets, graph.col_indices
    for i in range(n):
        while cursor <= max_deg:
            bucket = buckets[cursor]
            # Lazy deletion: entries may be stale (vertex moved or removed).
            while bucket:
                v = bucket[-1]
                if removed[v] or degs[v] != cursor:
                    bucket.pop()
                else:
                    break
            if bucket:
                break
            cursor += 1
        v = buckets[cursor].pop()
        removed[v] = True
        order[i] = v
        for w in C[R[v] : R[v + 1]]:
            if not removed[w]:
                degs[w] -= 1
                buckets[degs[w]].append(int(w))
                if degs[w] < cursor:
                    cursor = int(degs[w])
    return order[::-1].copy()  # color in reverse removal order


def incidence_degree_order(graph: CSRGraph, *, seed: int = 0) -> np.ndarray:
    """Incidence-degree ordering (Coleman–Moré).

    Next vertex is the one with the most *already ordered* neighbors —
    greedy for back-degree, implemented with a bucket queue keyed on the
    (monotonically growing) incidence degree.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    inc = np.zeros(n, dtype=np.int64)
    placed = np.zeros(n, dtype=bool)
    buckets: list[list[int]] = [list(range(n - 1, -1, -1))]
    top = 0  # highest non-empty incidence bucket
    order = np.empty(n, dtype=np.int64)
    R, C = graph.row_offsets, graph.col_indices
    for i in range(n):
        while top >= 0:
            bucket = buckets[top]
            while bucket:
                v = bucket[-1]
                if placed[v] or inc[v] != top:
                    bucket.pop()
                else:
                    break
            if bucket:
                break
            top -= 1
        v = buckets[top].pop()
        placed[v] = True
        order[i] = v
        for w in C[R[v] : R[v + 1]]:
            if not placed[w]:
                inc[w] += 1
                while len(buckets) <= inc[w]:
                    buckets.append([])
                buckets[inc[w]].append(int(w))
                if inc[w] > top:
                    top = int(inc[w])
    return order


#: Registry used by the API and the ordering ablation.
ORDERINGS = {
    "natural": natural_order,
    "first-fit": natural_order,
    "random": random_order,
    "largest-first": largest_degree_first,
    "smallest-last": smallest_degree_last,
    "incidence": incidence_degree_order,
}
