"""The 3-step GM baseline (Grosset et al., PPoPP 2011 poster).

The framework the paper's Fig. 1 motivates against:

1. **Graph partitioning** — vertices are split into fixed-size blocks (one
   per CUDA thread block) and *boundary* vertices (those with a neighbor in
   another partition) are identified.
2. **GPU coloring & conflict detection** — partitions are colored
   independently on the GPU with First Fit, using only *intra-partition*
   edges; speculative rounds iterate until no intra-partition conflicts
   remain.  Cross-partition edges are then checked and every conflicted or
   never-safely-colorable boundary vertex is flagged.
3. **Sequential conflict resolution** — the flagged vertices travel back
   over PCIe and the *CPU* recolors them one by one (greedy, full
   neighborhood view).

With block partitions, most vertices of any well-connected graph are
boundary vertices, so step 3 re-does nearly sequential work *after* paying
for the GPU rounds and two PCIe round trips — which is exactly why the
paper measures 3-step GM at ~0.66x the sequential baseline while its color
counts stay sequential-quality.
"""

from __future__ import annotations

import numpy as np

from ..cpusim.model import CPU
from ..gpusim.config import LaunchConfig
from ..gpusim.device import Device
from ..graph.csr import CSRGraph
from ..graph.partition import block_partition, boundary_vertices
from .base import COLOR_DTYPE, ColoringResult
from .kernels import (
    charge_color_kernel,
    charge_conflict_kernel,
    detect_conflicts,
    expand_segments,
    race_window_threads,
    speculative_color_waved,
    upload_graph,
)

__all__ = ["color_three_step_gm"]

_MAX_ITERATIONS = 10_000
_CPU_INSTR_PER_EDGE = 5
_CPU_INSTR_PER_VERTEX = 14


def _intra_partition_graph(graph: CSRGraph, assignment: np.ndarray) -> CSRGraph:
    """CSR view keeping only edges inside one partition (same vertex ids)."""
    u, v = graph.edge_endpoints()
    keep = assignment[u] == assignment[v]
    from ..graph.builder import from_edges

    return from_edges(
        u[keep].astype(np.int64),
        v[keep].astype(np.int64),
        num_vertices=graph.num_vertices,
        symmetrize=False,
        dedup=False,
        remove_self_loops=False,
        name=f"{graph.name}[intra]",
    )


def color_three_step_gm(
    graph: CSRGraph,
    *,
    partition_size: int = 512,
    block_size: int = 128,
    device: Device | None = None,
    cpu: CPU | None = None,
) -> ColoringResult:
    """Run the 3-step GM framework (GPU partitions + CPU conflict cleanup)."""
    if partition_size < 1:
        raise ValueError("partition_size must be positive")
    device = device or Device()
    cpu = cpu or CPU()
    launch = LaunchConfig(block_size=block_size)
    n = graph.num_vertices

    # ---- step 1: partitioning (host-side preprocessing) -----------------
    num_parts = max(1, -(-n // partition_size))
    partition = block_partition(graph, num_parts)
    boundary = boundary_vertices(graph, partition)
    intra = _intra_partition_graph(graph, partition.assignment)

    bufs = upload_graph(device, graph)
    colors = bufs.colors.data
    colored = np.zeros(n, dtype=bool)
    all_ids = np.arange(n, dtype=np.int64)

    # ---- step 2: GPU rounds on intra-partition structure ----------------
    iterations = 0
    profiles = []
    while True:
        if iterations >= _MAX_ITERATIONS:
            raise RuntimeError("3-step GM GPU phase failed to converge")
        active = all_ids[~colored]
        if active.size == 0:
            break
        tb = device.builder(n, launch, name=f"3gm-color-{iterations}")
        speculative_color_waved(
            intra, colors, active,
            race_window_threads(device, launch), thread_ids=active,
        )
        # The kernel walks the FULL adjacency list (partition membership is
        # tested per neighbor), but only same-partition colors are loaded.
        charge_color_kernel(
            tb, graph, bufs, active, active, use_ldg=False,
            idle_threads=n - active.size,
        )
        colored[active] = True
        profiles.append(device.commit(tb))

        tb = device.builder(n, launch, name=f"3gm-conflict-{iterations}")
        conflicted = detect_conflicts(intra, colors, active)
        mask = np.zeros(active.size, dtype=bool)
        mask[np.searchsorted(active, conflicted)] = True
        charge_conflict_kernel(
            tb, graph, bufs, active, active, mask, use_ldg=False,
            idle_threads=n - active.size,
        )
        colored[conflicted] = False
        profiles.append(device.commit(tb))
        device.dtoh(4)
        iterations += 1
        if conflicted.size == 0:
            break

    # ---- cross-partition conflict detection (GPU) -----------------------
    tb = device.builder(n, launch, name="3gm-cross-conflict")
    cross_conflicted = detect_conflicts(graph, colors, all_ids)
    mask = np.zeros(n, dtype=bool)
    mask[cross_conflicted] = True
    charge_conflict_kernel(tb, graph, bufs, all_ids, all_ids, mask, use_ldg=False)
    profiles.append(device.commit(tb))
    iterations += 1

    # ---- step 3: ship colors + flags to the host, resolve sequentially --
    device.dtoh(n * 4)  # color array
    device.dtoh(n)  # conflict flags
    to_fix = np.flatnonzero(mask)
    if to_fix.size:
        R, C = graph.row_offsets, graph.col_indices
        color_mask = np.full(graph.max_degree + 2, -1, dtype=np.int64)
        for v in to_fix:
            v = int(v)
            nbr_colors = colors[C[R[v] : R[v + 1]]]
            color_mask[nbr_colors] = v
            c = 1
            while color_mask[c] == v:
                c += 1
            colors[v] = c
        # Price the sequential pass: gather stream over the fixed vertices'
        # neighborhoods in visit order.
        seg, _, edge_idx = expand_segments(graph, to_fix.astype(np.int64))
        addresses = graph.col_indices[edge_idx].astype(np.int64) * 4
        m_fix = int(graph.degrees[to_fix].sum())
        cpu.run(
            "3gm-sequential-resolution",
            instructions=_CPU_INSTR_PER_VERTEX * to_fix.size + _CPU_INSTR_PER_EDGE * m_fix,
            addresses=addresses,
            sequential_bytes=to_fix.size * 16,
        )

    return ColoringResult(
        colors=colors.astype(COLOR_DTYPE, copy=True),
        scheme="3step-gm",
        iterations=iterations,
        gpu_time_us=device.timeline.kernel_time_us()
        + device.timeline.launch_overhead_us(device.config),
        cpu_time_us=cpu.total_time_us(),
        transfer_time_us=device.timeline.transfer_time_us(),
        num_kernel_launches=device.timeline.num_launches(),
        profiles=profiles,
        extra={
            "partition_size": partition_size,
            "num_partitions": num_parts,
            "boundary_fraction": float(boundary.mean()) if n else 0.0,
            "cpu_resolved": int(to_fix.size),
        },
    )
