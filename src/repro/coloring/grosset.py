"""The 3-step GM baseline (Grosset et al., PPoPP 2011 poster).

The framework the paper's Fig. 1 motivates against:

1. **Graph partitioning** — vertices are split into fixed-size blocks (one
   per CUDA thread block) and *boundary* vertices (those with a neighbor in
   another partition) are identified.
2. **GPU coloring & conflict detection** — partitions are colored
   independently on the GPU with First Fit, using only *intra-partition*
   edges; speculative rounds iterate until no intra-partition conflicts
   remain.  Cross-partition edges are then checked and every conflicted or
   never-safely-colorable boundary vertex is flagged.
3. **Sequential conflict resolution** — the flagged vertices travel back
   over PCIe and the *CPU* recolors them one by one (greedy, full
   neighborhood view).

With block partitions, most vertices of any well-connected graph are
boundary vertices, so step 3 re-does nearly sequential work *after* paying
for the GPU rounds and two PCIe round trips — which is exactly why the
paper measures 3-step GM at ~0.66x the sequential baseline while its color
counts stay sequential-quality.

The GPU phase (step 2's intra-partition rounds) runs on the shared engine
loop; the cross-partition check and the CPU cleanup are the recipe's
``finalize``, outside the round loop just as they sit outside the CUDA
host loop.
"""

from __future__ import annotations

import numpy as np

from ..cpusim.model import CPU
from ..engine.runner import RoundStatus, SchemeOutcome, SchemeRecipe, run_scheme
from ..gpusim.config import LaunchConfig
from ..graph.csr import CSRGraph
from ..graph.partition import block_partition, boundary_vertices
from .base import COLOR_DTYPE, ColoringResult
from .kernels import (
    Expansion,
    charge_color_kernel,
    charge_conflict_kernel,
    detect_conflicts,
    speculative_color_waved,
)

__all__ = ["ThreeStepGMRecipe", "color_three_step_gm"]

_CPU_INSTR_PER_EDGE = 5
_CPU_INSTR_PER_VERTEX = 14


def _intra_partition_graph(graph: CSRGraph, assignment: np.ndarray) -> CSRGraph:
    """CSR view keeping only edges inside one partition (same vertex ids)."""
    u, v = graph.edge_endpoints()
    keep = assignment[u] == assignment[v]
    from ..graph.builder import from_edges

    return from_edges(
        u[keep].astype(np.int64),
        v[keep].astype(np.int64),
        num_vertices=graph.num_vertices,
        symmetrize=False,
        dedup=False,
        remove_self_loops=False,
        name=f"{graph.name}[intra]",
    )


class ThreeStepGMRecipe(SchemeRecipe):
    """3-step GM as an engine recipe: GPU rounds + CPU cleanup finalizer."""

    scheme = "3step-gm"

    def __init__(
        self,
        *,
        partition_size: int = 512,
        block_size: int = 128,
        cpu: CPU | None = None,
    ) -> None:
        if partition_size < 1:
            raise ValueError("partition_size must be positive")
        self.partition_size = partition_size
        self.block_size = block_size
        self.cpu = cpu

    def setup(self, ex, graph, bufs) -> None:
        self.ex = ex
        self.graph = graph
        self.bufs = bufs
        self.launch = LaunchConfig(block_size=self.block_size)
        n = graph.num_vertices

        # ---- step 1: partitioning (host-side preprocessing) -------------
        self.num_parts = max(1, -(-n // self.partition_size))
        partition = block_partition(graph, self.num_parts)
        self.boundary = boundary_vertices(graph, partition)
        self.intra = _intra_partition_graph(graph, partition.assignment)

        self.colors = bufs.colors.data
        self.colored = np.zeros(n, dtype=bool)
        self.all_ids = np.arange(n, dtype=np.int64)
        self.wave_threads = ex.race_window(self.launch)
        self.done = False

    def has_work(self) -> bool:
        return not self.done

    def uncolored(self) -> int:
        # Conflicted vertices hold a (stale) color; the flag is the truth.
        return int((~self.colored).sum())

    def round(self, iteration: int) -> RoundStatus:
        ex, graph, bufs = self.ex, self.graph, self.bufs
        n = graph.num_vertices
        active = self.all_ids[~self.colored]
        if active.size == 0:
            # Nothing launched: the loop must not charge a readback or
            # count a round (the CUDA host code breaks before launching).
            self.done = True
            return RoundStatus(active=0, executed=False)

        # One expansion per graph view: the intra-partition edges feed the
        # color step and conflict scan, the full adjacency feeds pricing.
        intra_exp = Expansion(self.intra, active)
        full_exp = Expansion(graph, active)

        tb = ex.builder(n, self.launch, name=f"3gm-color-{iteration}")
        speculative_color_waved(
            self.intra, self.colors, active, self.wave_threads,
            thread_ids=active, expansion=intra_exp, scratch=self.scratch,
        )
        # The kernel walks the FULL adjacency list (partition membership is
        # tested per neighbor), but only same-partition colors are loaded.
        charge_color_kernel(
            tb, graph, bufs, active, active, use_ldg=False,
            idle_threads=n - active.size, expansion=full_exp,
        )
        self.colored[active] = True
        self.profiles.append(ex.commit(tb))

        tb = ex.builder(n, self.launch, name=f"3gm-conflict-{iteration}")
        conflicted = detect_conflicts(
            self.intra, self.colors, active, expansion=intra_exp
        )
        mask = np.zeros(active.size, dtype=bool)
        mask[np.searchsorted(active, conflicted)] = True
        charge_conflict_kernel(
            tb, graph, bufs, active, active, mask, use_ldg=False,
            idle_threads=n - active.size, expansion=full_exp,
        )
        self.colored[conflicted] = False
        self.profiles.append(ex.commit(tb))
        if conflicted.size == 0:
            self.done = True  # exit after the (still charged+counted) readback
        return RoundStatus(active=int(active.size), conflicts=int(conflicted.size))

    def finalize(self) -> SchemeOutcome:
        ex, graph, bufs = self.ex, self.graph, self.bufs
        n = graph.num_vertices
        colors, all_ids = self.colors, self.all_ids

        # ---- cross-partition conflict detection (GPU) -------------------
        tb = ex.builder(n, self.launch, name="3gm-cross-conflict")
        full_exp = Expansion(graph, all_ids)  # full-range: plan views, no copy
        cross_conflicted = detect_conflicts(graph, colors, all_ids, expansion=full_exp)
        mask = np.zeros(n, dtype=bool)
        mask[cross_conflicted] = True
        charge_conflict_kernel(
            tb, graph, bufs, all_ids, all_ids, mask, use_ldg=False,
            expansion=full_exp,
        )
        self.profiles.append(ex.commit(tb))

        # ---- step 3: ship colors + flags to the host, resolve on the CPU
        ex.dtoh(n * 4)  # color array
        ex.dtoh(n)  # conflict flags
        cpu = self.cpu if self.cpu is not None else ex.host_cpu()
        cpu_events_before = len(cpu.events)
        to_fix = np.flatnonzero(mask)
        if to_fix.size:
            R, C = graph.row_offsets, graph.col_indices
            color_mask = np.full(graph.max_degree + 2, -1, dtype=np.int64)
            for v in to_fix:
                v = int(v)
                nbr_colors = colors[C[R[v] : R[v + 1]]]
                color_mask[nbr_colors] = v
                c = 1
                while color_mask[c] == v:
                    c += 1
                colors[v] = c
            # Price the sequential pass: gather stream over the fixed
            # vertices' neighborhoods in visit order.
            fix_exp = Expansion(graph, to_fix.astype(np.int64))
            addresses = fix_exp.nbr64(graph) * 4
            m_fix = int(graph.degrees[to_fix].sum())
            cpu.run(
                "3gm-sequential-resolution",
                instructions=_CPU_INSTR_PER_VERTEX * to_fix.size
                + _CPU_INSTR_PER_EDGE * m_fix,
                addresses=addresses,
                sequential_bytes=to_fix.size * 16,
            )

        return SchemeOutcome(
            colors=colors.astype(COLOR_DTYPE, copy=True),
            extra_iterations=1,  # the cross-partition pass
            cpu_time_us=sum(e.time_us for e in cpu.events[cpu_events_before:]),
            extra={
                "partition_size": self.partition_size,
                "num_partitions": self.num_parts,
                "boundary_fraction": float(self.boundary.mean()) if n else 0.0,
                "cpu_resolved": int(to_fix.size),
            },
        )


def color_three_step_gm(
    graph: CSRGraph,
    *,
    partition_size: int = 512,
    block_size: int = 128,
    device=None,
    backend=None,
    context=None,
    cpu: CPU | None = None,
) -> ColoringResult:
    """Run the 3-step GM framework (GPU partitions + CPU conflict cleanup)."""
    recipe = ThreeStepGMRecipe(
        partition_size=partition_size, block_size=block_size, cpu=cpu
    )
    return run_scheme(graph, recipe, device=device, backend=backend, context=context)
