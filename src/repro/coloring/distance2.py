"""Distance-2 graph coloring (extension).

A distance-2 coloring assigns distinct colors to any two vertices within
two hops.  It is the coloring that matters for sparse Jacobian/Hessian
compression (structurally orthogonal columns) and for avoiding read-write
*and* write-write races in some data-graph schedules — the standard
companion problem in the coloring literature (Çatalyürek et al. treat
both; ColPack ships both).

Both a sequential greedy (the Alg. 1 analogue over the two-hop
neighborhood) and a speculative GPU formulation (the Alg. 4 analogue,
priced on the simulated device) are provided.  The speculative variant
detects conflicts over two-hop pairs with the same smaller-endpoint
tie-break as the distance-1 schemes.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.config import LaunchConfig
from ..gpusim.device import Device
from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringError, ColoringResult
from .kernels import expand_segments, min_excluded_colors, race_window_threads, upload_graph

__all__ = [
    "TwoHopExpansion",
    "two_hop_pairs",
    "count_d2_conflicts",
    "validate_distance2",
    "greedy_distance2",
    "color_distance2_gpu",
]

_MAX_ITERATIONS = 10_000
_INSTR_PER_HOP2_EDGE = 7
_INSTR_PER_VERTEX = 16


class TwoHopExpansion:
    """Two-hop expansion of an id set, computed once and sliced by window.

    Holds both hop levels of the flattened walk ``v - w - u``: the direct
    expansion (``seg1``/``step1``/``e1`` with endpoints ``w``) and the
    expansion of every ``w``'s adjacency (``seg2``/``step2``/``e2`` with
    endpoints ``u``).  One instance per round replaces the former pattern
    of re-expanding the same active set in the color step (once per
    window), the conflict scan and both charge passes.
    """

    __slots__ = ("ids", "seg1", "step1", "e1", "w", "seg2", "step2", "e2", "u")

    def __init__(self, graph: CSRGraph, vertex_ids: np.ndarray) -> None:
        self.ids = np.asarray(vertex_ids, dtype=np.int64)
        self.seg1, self.step1, self.e1 = expand_segments(graph, self.ids)
        self.w = graph.col_indices[self.e1].astype(np.int64)
        # Second hop: expand each w's adjacency, owned by the first hop.
        self.seg2, self.step2, self.e2 = expand_segments(graph, self.w)
        self.u = graph.col_indices[self.e2].astype(np.int64)

    def pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """The full ``(seg, targets)`` pair view (see :func:`two_hop_pairs`)."""
        seg = np.concatenate([self.seg1, self.seg1[self.seg2]])
        targets = np.concatenate([self.w, self.u])
        return seg, targets

    def window(self, i0: int, i1: int) -> tuple[np.ndarray, np.ndarray]:
        """Pair view of ``ids[i0:i1]`` — the same arrays
        ``two_hop_pairs(graph, ids[i0:i1])`` would rebuild, by slicing.

        Both seg arrays are non-decreasing, so a contiguous id window maps
        to contiguous ranges of each hop level via ``searchsorted``.
        """
        a1, b1 = np.searchsorted(self.seg1, (i0, i1))
        a2, b2 = np.searchsorted(self.seg2, (a1, b1))
        seg = np.concatenate([self.seg1[a1:b1], self.seg1[self.seg2[a2:b2]]]) - i0
        targets = np.concatenate([self.w[a1:b1], self.u[a2:b2]])
        return seg, targets


def two_hop_pairs(graph: CSRGraph, vertex_ids: np.ndarray):
    """Flattened two-hop adjacency of ``vertex_ids``.

    Returns ``(seg, targets)``: for every path ``v - w - u`` with ``v`` in
    ``vertex_ids`` (and every direct neighbor ``w`` itself), the position
    of ``v`` and the endpoint (``w`` or ``u``).  ``v`` itself may appear
    as a target (via ``v - w - v``); callers mask self-pairs out.
    """
    return TwoHopExpansion(graph, vertex_ids).pairs()


def count_d2_conflicts(graph: CSRGraph, colors: np.ndarray) -> int:
    """Number of distance-<=2 vertex pairs sharing a positive color."""
    n = graph.num_vertices
    if n == 0:
        return 0
    seg, targets = two_hop_pairs(graph, np.arange(n, dtype=np.int64))
    v = seg  # seg positions == vertex ids when the full range is passed
    mask = (targets != v) & (colors[v] == colors[targets]) & (colors[v] > 0)
    # Each unordered pair appears from both sides (and possibly via several
    # middle vertices); dedup before counting.
    a = np.minimum(v[mask], targets[mask])
    b = np.maximum(v[mask], targets[mask])
    return int(np.unique(a * n + b).size)


def validate_distance2(graph: CSRGraph, result: ColoringResult) -> None:
    """Raise :class:`ColoringError` unless a complete distance-2 coloring."""
    if int((result.colors <= 0).sum()):
        raise ColoringError(f"{result.scheme}: uncolored vertices remain")
    conflicts = count_d2_conflicts(graph, result.colors)
    if conflicts:
        raise ColoringError(
            f"{result.scheme}: {conflicts} distance-2 conflicts remain"
        )


def greedy_distance2(graph: CSRGraph, order: np.ndarray | None = None) -> ColoringResult:
    """Sequential greedy distance-2 coloring (reference implementation).

    Identical structure to Alg. 1 with the forbidden set drawn from the
    two-hop neighborhood; uses at most ``max_degree^2 + 1`` colors.
    """
    n = graph.num_vertices
    colors = np.zeros(n, dtype=COLOR_DTYPE)
    if order is None:
        order = np.arange(n, dtype=np.int64)
    R, C = graph.row_offsets, graph.col_indices
    mask_size = min(n + 2, graph.max_degree * graph.max_degree + 2)
    color_mask = np.full(mask_size, -1, dtype=np.int64)
    for v in order:
        v = int(v)
        nbrs = C[R[v] : R[v + 1]]
        color_mask[colors[nbrs]] = v
        for w in nbrs:
            color_mask[colors[C[R[w] : R[w + 1]]]] = v
        c = 1
        while color_mask[c] == v:
            c += 1
        colors[v] = c
    result = ColoringResult(colors=colors, scheme="d2-sequential", iterations=1)
    return result


def _speculative_d2_step(
    graph: CSRGraph,
    colors: np.ndarray,
    active_ids: np.ndarray,
    pairs: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Snapshot mex over the two-hop neighborhood of each active vertex."""
    seg, targets = pairs if pairs is not None else two_hop_pairs(graph, active_ids)
    v = np.asarray(active_ids, dtype=np.int64)[seg]
    keep = targets != v  # own (possibly stale) color never forbids
    return min_excluded_colors(seg[keep], colors[targets[keep]], active_ids.size)


def _detect_d2_conflicts(
    graph: CSRGraph,
    colors: np.ndarray,
    scope_ids: np.ndarray,
    pairs: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Scope vertices that lose a distance-2 conflict (smaller id loses)."""
    scope_ids = np.asarray(scope_ids, dtype=np.int64)
    seg, targets = pairs if pairs is not None else two_hop_pairs(graph, scope_ids)
    v = scope_ids[seg]
    clash = (
        (colors[v] == colors[targets]) & (colors[v] > 0) & (v < targets)
    )
    loser = np.zeros(scope_ids.size, dtype=bool)
    loser[seg[clash]] = True
    return scope_ids[loser]


def color_distance2_gpu(
    graph: CSRGraph,
    *,
    block_size: int = 128,
    device: Device | None = None,
) -> ColoringResult:
    """Speculative distance-2 coloring on the simulated device.

    Topology-driven skeleton (one thread per vertex, iterate to
    convergence) with the two-hop forbidden set; trace charging walks the
    ``R``/``C`` arrays twice per vertex, exactly as the kernel would.
    """
    device = device or Device()
    launch = LaunchConfig(block_size=block_size)
    n = graph.num_vertices
    bufs = upload_graph(device, graph)
    colors = bufs.colors.data
    colored = np.zeros(n, dtype=bool)
    all_ids = np.arange(n, dtype=np.int64)
    window = race_window_threads(device, launch)

    iterations = 0
    profiles = []
    while True:
        if iterations >= _MAX_ITERATIONS:
            raise RuntimeError("distance-2 coloring failed to converge")
        active = all_ids[~colored]
        changed = active.size > 0
        if changed:
            # One two-hop expansion per round; the color windows, the
            # conflict scan and both charge passes slice or reuse it.
            hop = TwoHopExpansion(graph, active)
            tb = device.builder(n, launch, name=f"d2-color-{iterations}")
            # Wave-granular visibility, chunked over thread-id ranges.
            for lo in range(0, n, window):
                i0, i1 = np.searchsorted(active, (lo, lo + window))
                if i1 > i0:
                    chunk = active[i0:i1]
                    colors[chunk] = _speculative_d2_step(
                        graph, colors, chunk, pairs=hop.window(i0, i1)
                    )
            colored[active] = True
            _charge_d2_kernel(tb, graph, bufs, active, idle=n - active.size, hop=hop)
            profiles.append(device.commit(tb))

            tb = device.builder(n, launch, name=f"d2-conflict-{iterations}")
            conflicted = _detect_d2_conflicts(graph, colors, active, pairs=hop.pairs())
            colored[conflicted] = False
            _charge_d2_kernel(tb, graph, bufs, active, idle=n - active.size, hop=hop)
            profiles.append(device.commit(tb))
        device.dtoh(4)
        iterations += 1
        if not changed:
            break

    result = ColoringResult(
        colors=colors.astype(COLOR_DTYPE, copy=True),
        scheme="d2-gpu",
        iterations=iterations,
        gpu_time_us=device.timeline.kernel_time_us()
        + device.timeline.launch_overhead_us(device.config),
        transfer_time_us=device.timeline.transfer_time_us(),
        num_kernel_launches=device.timeline.num_launches(),
        profiles=profiles,
        extra={"block_size": block_size},
    )
    return result


def _charge_d2_kernel(
    tb,
    graph: CSRGraph,
    bufs,
    active: np.ndarray,
    *,
    idle: int,
    hop: TwoHopExpansion | None = None,
) -> None:
    """Record the two-hop walk's memory behavior."""
    active = np.asarray(active, dtype=np.int64)
    if hop is None:
        hop = TwoHopExpansion(graph, active)
    seg1, step1, e1, w = hop.seg1, hop.step1, hop.e1, hop.w
    t1 = active[seg1]
    tb.load(active, bufs.R.addr(active))
    tb.load(active, bufs.R.addr(active + 1))
    tb.load(t1, bufs.C.addr(e1), step=step1)
    tb.load(t1, bufs.colors.addr(w), step=step1)
    # second hop: R[w], R[w+1] and w's row + colors
    tb.load(t1, bufs.R.addr(w), step=step1)
    seg2, step2, e2, u = hop.seg2, hop.step2, hop.e2, hop.u
    t2 = t1[seg2]
    # step key folds both loop levels so nothing coalesces across trips
    deg_cap = max(int(graph.max_degree), 1)
    step2_key = step1[seg2] * (deg_cap + 1) + step2
    tb.load(t2, bufs.C.addr(e2), step=step2_key)
    tb.load(t2, bufs.colors.addr(u), step=step2_key)
    tb.store(active, bufs.colors.addr(active))
    # instructions: SIMT warp-max over two-hop trip counts
    hop2 = np.zeros(active.size, dtype=np.int64)
    np.add.at(hop2, seg1, graph.degrees[w].astype(np.int64))
    tb.instructions(active, hop2 * _INSTR_PER_HOP2_EDGE + _INSTR_PER_VERTEX)
    if idle:
        tb.uniform_overhead(3)
    tb.activate(active.size)
