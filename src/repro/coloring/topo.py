"""Algorithm 4: topology-driven speculative-greedy coloring (T-base/T-ldg).

One thread per vertex, every iteration, whether or not the vertex still
needs work — the simple mapping that fits GPUs' data-parallel model.  Each
round runs two kernels:

1. ``color``    — every thread checks its ``colored`` flag; uncolored
   vertices take the smallest color their neighbors' snapshot permits and
   set ``changed``.
2. ``conflict`` — every thread re-scans its neighbors; the smaller endpoint
   of a monochromatic edge clears its ``colored`` flag.

The host reads the 4-byte ``changed`` flag between rounds (one tiny DtoH
per iteration — real CUDA code does exactly this) and stops when a round
colors nothing.

``use_ldg=True`` routes the immutable ``R``/``C`` arrays through the
read-only data cache (the paper's ``__ldg`` optimization, Fig. 4); the
mutable ``color`` array always takes the normal load path.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.config import LaunchConfig
from ..gpusim.device import Device
from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringResult
from .kernels import (
    charge_color_kernel,
    charge_conflict_kernel,
    charge_conflict_kernel_edges,
    detect_conflicts,
    race_window_threads,
    speculative_color_waved,
    upload_graph,
)

__all__ = ["color_topology_driven"]

_MAX_ITERATIONS = 10_000  # safety net; speculation converges in O(log n) rounds


def color_topology_driven(
    graph: CSRGraph,
    *,
    use_ldg: bool = False,
    block_size: int = 128,
    device: Device | None = None,
    conflict_scope: str = "all",
    conflict_parallelism: str = "vertex",
) -> ColoringResult:
    """Run Alg. 4 on the simulated device.

    Parameters
    ----------
    use_ldg:
        Enable the read-only-cache path for ``R``/``C`` (T-ldg vs T-base).
    block_size:
        CUDA thread-block size (the paper's Fig. 8 sweep; default 128).
    device:
        Reuse an existing simulated device (else a fresh K20c).
    conflict_scope:
        ``'all'`` (default) re-scans every vertex's edges each round,
        exactly as Alg. 4 lines 15-21 are written — this full-graph rescan
        is the work-inefficiency the data-driven scheme eliminates.
        ``'active'`` checks only this round's colored vertices (sufficient,
        since a conflict needs both endpoints colored in the same round);
        it is the ablation knob quantifying that inefficiency.
    conflict_parallelism:
        ``'vertex'`` — one thread per vertex rescanning its row (the
        pseudocode's mapping); ``'edge'`` — one thread per directed edge
        (extension: perfectly balanced regardless of degree skew, at the
        price of an explicit edge-source array).  Requires
        ``conflict_scope='all'`` (the edge pass has no vertex filter).
    """
    if conflict_scope not in ("active", "all"):
        raise ValueError("conflict_scope must be 'active' or 'all'")
    if conflict_parallelism not in ("vertex", "edge"):
        raise ValueError("conflict_parallelism must be 'vertex' or 'edge'")
    if conflict_parallelism == "edge" and conflict_scope != "all":
        raise ValueError("edge-parallel conflict detection implies scope='all'")
    device = device or Device()
    launch = LaunchConfig(block_size=block_size)
    n = graph.num_vertices
    bufs = upload_graph(device, graph)
    src_buf = (
        device.register(graph.edge_sources(), name="edge_src")
        if conflict_parallelism == "edge"
        else None
    )
    colors = bufs.colors.data  # int32 view, 0 = uncolored
    colored = np.zeros(n, dtype=bool)
    all_ids = np.arange(n, dtype=np.int64)
    wave_threads = race_window_threads(device, launch)

    iterations = 0
    profiles = []
    while True:
        if iterations >= _MAX_ITERATIONS:
            raise RuntimeError("topology-driven coloring failed to converge")
        active = all_ids[~colored]
        changed = active.size > 0
        if changed:
            # ---- coloring kernel over ALL n threads (the scheme's cost) --
            tb = device.builder(n, launch, name=f"topo-color-{iterations}")
            speculative_color_waved(
                graph, colors, active, wave_threads, thread_ids=active
            )
            charge_color_kernel(
                tb, graph, bufs, active, active, use_ldg=use_ldg,
                idle_threads=n - active.size,
            )
            # every thread also reads its colored flag; losers store it
            tb.load(all_ids, bufs.aux.addr(all_ids))
            tb.store(active, bufs.aux.addr(active))
            colored[active] = True
            profiles.append(device.commit(tb))

            # ---- conflict-detection kernel --------------------------------
            scope = active if conflict_scope == "active" else all_ids
            conflicted = detect_conflicts(graph, colors, scope)
            if conflict_parallelism == "edge":
                tb = device.builder(
                    graph.num_edges, launch, name=f"topo-conflict-{iterations}"
                )
                charge_conflict_kernel_edges(
                    tb, graph, bufs, src_buf,
                    np.ones(n, dtype=bool), conflicted, use_ldg=use_ldg,
                )
            else:
                tb = device.builder(n, launch, name=f"topo-conflict-{iterations}")
                mask = np.zeros(scope.size, dtype=bool)
                mask[np.searchsorted(scope, conflicted)] = True
                charge_conflict_kernel(
                    tb, graph, bufs, scope, scope, mask, use_ldg=use_ldg,
                    idle_threads=n - scope.size,
                )
            # Pseudocode keeps the stale color (only the flag is cleared);
            # other vertices' masks keep forbidding it until re-coloring.
            colored[conflicted] = False
            profiles.append(device.commit(tb))

        # Host reads the changed flag (4 bytes over PCIe) every round.
        device.dtoh(4)
        iterations += 1
        if not changed:
            break

    bufs.colors.data[:] = colors
    return ColoringResult(
        colors=colors.astype(COLOR_DTYPE, copy=True),
        scheme="topo-ldg" if use_ldg else "topo-base",
        iterations=iterations,
        gpu_time_us=device.timeline.kernel_time_us()
        + device.timeline.launch_overhead_us(device.config),
        transfer_time_us=device.timeline.transfer_time_us(),
        num_kernel_launches=device.timeline.num_launches(),
        profiles=profiles,
        extra={
            "block_size": block_size,
            "use_ldg": use_ldg,
            "conflict_scope": conflict_scope,
            "conflict_parallelism": conflict_parallelism,
        },
    )
