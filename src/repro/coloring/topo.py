"""Algorithm 4: topology-driven speculative-greedy coloring (T-base/T-ldg).

One thread per vertex, every iteration, whether or not the vertex still
needs work — the simple mapping that fits GPUs' data-parallel model.  Each
round runs two kernels:

1. ``color``    — every thread checks its ``colored`` flag; uncolored
   vertices take the smallest color their neighbors' snapshot permits and
   set ``changed``.
2. ``conflict`` — every thread re-scans its neighbors; the smaller endpoint
   of a monochromatic edge clears its ``colored`` flag.

The host reads the 4-byte ``changed`` flag between rounds (one tiny DtoH
per iteration — real CUDA code does exactly this) and stops when a round
colors nothing.  The round loop itself lives in :mod:`repro.engine`; this
module only declares what one round launches (:class:`TopologyRecipe`).

``use_ldg=True`` routes the immutable ``R``/``C`` arrays through the
read-only data cache (the paper's ``__ldg`` optimization, Fig. 4); the
mutable ``color`` array always takes the normal load path.
"""

from __future__ import annotations

import numpy as np

from ..engine.runner import RoundStatus, SchemeOutcome, SchemeRecipe, run_scheme
from ..gpusim.config import LaunchConfig
from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringResult
from .kernels import (
    Expansion,
    charge_color_kernel,
    charge_conflict_kernel,
    charge_conflict_kernel_edges,
    detect_conflicts,
    speculative_color_waved,
)

__all__ = ["TopologyRecipe", "color_topology_driven"]


class TopologyRecipe(SchemeRecipe):
    """Alg. 4 as an engine recipe: two full-range kernels per round."""

    def __init__(
        self,
        *,
        use_ldg: bool = False,
        block_size: int = 128,
        conflict_scope: str = "all",
        conflict_parallelism: str = "vertex",
    ) -> None:
        if conflict_scope not in ("active", "all"):
            raise ValueError("conflict_scope must be 'active' or 'all'")
        if conflict_parallelism not in ("vertex", "edge"):
            raise ValueError("conflict_parallelism must be 'vertex' or 'edge'")
        if conflict_parallelism == "edge" and conflict_scope != "all":
            raise ValueError("edge-parallel conflict detection implies scope='all'")
        self.use_ldg = use_ldg
        self.block_size = block_size
        self.conflict_scope = conflict_scope
        self.conflict_parallelism = conflict_parallelism

    @property
    def scheme(self) -> str:
        return "topo-ldg" if self.use_ldg else "topo-base"

    def setup(self, ex, graph, bufs) -> None:
        self.ex = ex
        self.graph = graph
        self.bufs = bufs
        self.launch = LaunchConfig(block_size=self.block_size)
        self.src_buf = (
            ex.register(graph.edge_sources(), name="edge_src")
            if self.conflict_parallelism == "edge"
            else None
        )
        self.colors = bufs.colors.data  # int32 view, 0 = uncolored
        self.colored = np.zeros(graph.num_vertices, dtype=bool)
        self.all_ids = np.arange(graph.num_vertices, dtype=np.int64)
        # Full-range expansion: plan-backed views, shared by every round's
        # whole-graph conflict scan.  Its memo persists across rounds, so
        # round r+1's full-graph conflict charge reuses round r's coalesced
        # streams outright.
        self.full_expansion = Expansion(graph, self.all_ids)
        self.aux_addr = bufs.aux.addr(self.all_ids)
        self.wave_threads = ex.race_window(self.launch)
        self.done = False

    def has_work(self) -> bool:
        return not self.done

    def round(self, iteration: int) -> RoundStatus:
        ex, graph, bufs = self.ex, self.graph, self.bufs
        n = graph.num_vertices
        # Round 1 runs over the identical full range: reusing the all_ids
        # *object* (not a fresh equal copy) lets the charge memos recognize
        # the color and conflict kernels' shared streams by identity.
        active = (
            self.all_ids if not self.colored.any() else self.all_ids[~self.colored]
        )
        if active.size == 0:
            # Terminating round: no thread sets ``changed``; it still runs
            # (and is counted) exactly like the CUDA loop's last pass.
            self.done = True
            return RoundStatus(active=0)

        # ---- coloring kernel over ALL n threads (the scheme's cost) ----
        # One expansion of the active set serves the color step and its
        # charge pass alike.
        active_exp = (
            self.full_expansion
            if active.size == n
            else Expansion(graph, active)
        )
        color_tb = ex.builder(n, self.launch, name=f"topo-color-{iteration}")
        speculative_color_waved(
            graph, self.colors, active, self.wave_threads, thread_ids=active,
            expansion=active_exp, scratch=self.scratch,
        )
        charge_color_kernel(
            color_tb, graph, bufs, active, active, use_ldg=self.use_ldg,
            idle_threads=n - active.size, expansion=active_exp,
        )
        # every thread also reads its colored flag; losers store it
        memo = self.full_expansion.memo
        color_tb.load(self.all_ids, self.aux_addr, memo=memo)
        if active is self.all_ids:
            color_tb.store(active, self.aux_addr, memo=memo)
        else:
            color_tb.store(active, bufs.aux.addr(active))
        self.colored[active] = True

        # ---- conflict-detection kernel ---------------------------------
        if self.conflict_scope == "active":
            scope, scope_exp = active, active_exp
        else:
            scope, scope_exp = self.all_ids, self.full_expansion
        conflicted = detect_conflicts(graph, self.colors, scope, expansion=scope_exp)
        if self.conflict_parallelism == "edge":
            tb = ex.builder(
                graph.num_edges, self.launch, name=f"topo-conflict-{iteration}"
            )
            charge_conflict_kernel_edges(
                tb, graph, bufs, self.src_buf,
                np.ones(n, dtype=bool), conflicted, use_ldg=self.use_ldg,
            )
        else:
            tb = ex.builder(n, self.launch, name=f"topo-conflict-{iteration}")
            mask = np.zeros(scope.size, dtype=bool)
            mask[np.searchsorted(scope, conflicted)] = True
            charge_conflict_kernel(
                tb, graph, bufs, scope, scope, mask, use_ldg=self.use_ldg,
                idle_threads=n - scope.size, expansion=scope_exp,
            )
        # Pseudocode keeps the stale color (only the flag is cleared);
        # other vertices' masks keep forbidding it until re-coloring.
        self.colored[conflicted] = False
        # Nothing between the two builders touches the timeline, so the
        # pair prices concurrently with unchanged seeds and event order.
        self.profiles.extend(ex.commit_pair(color_tb, tb))
        return RoundStatus(active=int(active.size), conflicts=int(conflicted.size))

    def uncolored(self) -> int:
        # Conflicted vertices hold a (stale) color; the flag is the truth.
        return int((~self.colored).sum())

    def finalize(self) -> SchemeOutcome:
        return SchemeOutcome(
            colors=self.colors.astype(COLOR_DTYPE, copy=True),
            extra={
                "block_size": self.block_size,
                "use_ldg": self.use_ldg,
                "conflict_scope": self.conflict_scope,
                "conflict_parallelism": self.conflict_parallelism,
            },
        )


def color_topology_driven(
    graph: CSRGraph,
    *,
    use_ldg: bool = False,
    block_size: int = 128,
    device=None,
    backend=None,
    context=None,
    conflict_scope: str = "all",
    conflict_parallelism: str = "vertex",
) -> ColoringResult:
    """Run Alg. 4 through the execution engine.

    Parameters
    ----------
    use_ldg:
        Enable the read-only-cache path for ``R``/``C`` (T-ldg vs T-base).
    block_size:
        CUDA thread-block size (the paper's Fig. 8 sweep; default 128).
    device / backend / context:
        Execution substrate: reuse a simulated device, name a backend
        (``"gpusim"``/``"cpusim"``), or share a whole
        :class:`~repro.engine.context.ExecutionContext` (else a fresh
        K20c).
    conflict_scope:
        ``'all'`` (default) re-scans every vertex's edges each round,
        exactly as Alg. 4 lines 15-21 are written — this full-graph rescan
        is the work-inefficiency the data-driven scheme eliminates.
        ``'active'`` checks only this round's colored vertices (sufficient,
        since a conflict needs both endpoints colored in the same round);
        it is the ablation knob quantifying that inefficiency.
    conflict_parallelism:
        ``'vertex'`` — one thread per vertex rescanning its row (the
        pseudocode's mapping); ``'edge'`` — one thread per directed edge
        (extension: perfectly balanced regardless of degree skew, at the
        price of an explicit edge-source array).  Requires
        ``conflict_scope='all'`` (the edge pass has no vertex filter).
    """
    recipe = TopologyRecipe(
        use_ldg=use_ldg,
        block_size=block_size,
        conflict_scope=conflict_scope,
        conflict_parallelism=conflict_parallelism,
    )
    return run_scheme(graph, recipe, device=device, backend=backend, context=context)
