"""Algorithm 1: the sequential greedy baseline.

Faithful to Çatalyürek et al.'s formulation: a color-indexed ``colorMask``
array is stamped with the current vertex id (not a boolean), so it never
needs re-initialization between vertices; the smallest index not stamped
with ``v`` is ``v``'s color.

The run is priced with the CPU cost model (see :mod:`repro.cpusim`) so the
GPU schemes' speedups have the paper's denominator: instructions are
counted per the inner loops, the ``color[w]`` gather stream goes through
the two-level cache model, and the sequential R/C sweeps are charged as
streaming traffic.
"""

from __future__ import annotations

import numpy as np

from ..cpusim.model import CPU
from ..graph.csr import CSRGraph
from .base import COLOR_DTYPE, ColoringResult
from .ordering import ORDERINGS

__all__ = ["greedy_sequential", "greedy_colors_only"]

# Per-vertex / per-edge dynamic instruction estimates for the cost model:
# loop control + mask stamp per edge; vertex overhead covers the colorMask
# scan (expected O(1) amortized per color tried) and the color store.
_INSTR_PER_EDGE = 5
_INSTR_PER_VERTEX = 12


def greedy_colors_only(graph: CSRGraph, order: np.ndarray | None = None) -> np.ndarray:
    """Run Algorithm 1 and return just the color array (no pricing).

    This is the reference implementation tests compare against; it is a
    direct transcription of the pseudocode with the id-stamped colorMask.
    """
    n = graph.num_vertices
    colors = np.zeros(n, dtype=COLOR_DTYPE)
    if n == 0:
        return colors
    if order is None:
        order = np.arange(n, dtype=np.int64)
    # colorMask[c] == v  <=>  color c is forbidden for the current vertex v.
    # Size bound: a vertex of degree d needs at most color d+1, so max
    # degree + 2 entries suffice.  Initialized to an id outside V.
    color_mask = np.full(graph.max_degree + 2, -1, dtype=np.int64)
    R, C = graph.row_offsets, graph.col_indices
    for v in order:
        v = int(v)
        nbr_colors = colors[C[R[v] : R[v + 1]]]
        color_mask[nbr_colors] = v  # stamping color 0 is harmless (unused)
        c = 1
        while color_mask[c] == v:
            c += 1
        colors[v] = c
    return colors


def greedy_sequential(
    graph: CSRGraph,
    *,
    ordering: str = "natural",
    seed: int = 0,
    cpu: CPU | None = None,
) -> ColoringResult:
    """Sequential greedy coloring with simulated Xeon timing.

    Parameters
    ----------
    ordering:
        Key into :data:`repro.coloring.ordering.ORDERINGS`; the paper's
        baseline is ``"natural"`` (First Fit).
    cpu:
        Optionally supply the :class:`~repro.cpusim.model.CPU` to accumulate
        into (3-step GM reuses this to price its sequential phase).
    """
    if ordering not in ORDERINGS:
        raise ValueError(f"unknown ordering {ordering!r}; choose from {sorted(ORDERINGS)}")
    order = ORDERINGS[ordering](graph, seed=seed)
    colors = greedy_colors_only(graph, order)

    cpu = cpu or CPU()
    n, m = graph.num_vertices, graph.num_edges
    # Gather stream: color[w] for every adjacency entry, in visit order.
    # (Addresses are 4-byte elements from an arbitrary base; the cache model
    # only needs relative layout.)  Vectorized segment expansion: for each
    # ordered vertex, its R[v]..R[v+1] slice of C.
    if n and m:
        lens = graph.degrees[order].astype(np.int64)
        starts = graph.row_offsets[order]
        seg_base = np.repeat(np.cumsum(lens) - lens, lens)
        idx = np.repeat(starts, lens) + (np.arange(int(lens.sum())) - seg_base)
        edge_targets = graph.col_indices[idx].astype(np.int64)
    else:
        edge_targets = np.empty(0, dtype=np.int64)
    gather_addresses = edge_targets * np.dtype(COLOR_DTYPE).itemsize
    cpu.run(
        "greedy-sequential",
        instructions=_INSTR_PER_VERTEX * n + _INSTR_PER_EDGE * m,
        addresses=gather_addresses,
        sequential_bytes=graph.memory_bytes(),
    )
    return ColoringResult(
        colors=colors,
        scheme=f"sequential-{ordering}" if ordering != "natural" else "sequential",
        iterations=1,
        cpu_time_us=cpu.total_time_us(),
        extra={"ordering": ordering},
    )
