"""The scheme registry: typed options and validation for every method key.

``color_graph(g, method, **kwargs)`` used to forward ``**kwargs`` blind —
a misspelled ``blocksize=256`` was silently swallowed by a lambda default
and the run quietly measured the wrong thing.  The registry closes that
hole: every method key maps to a :class:`SchemeInfo` carrying a frozen
*options dataclass* (its fields are the scheme's legal keywords, with
defaults and one-line docs), and :func:`validate_options` rejects unknown
keywords with a "did you mean" plus the scheme's valid-option listing.

The same metadata generates the scheme table in ``docs/API.md``
(:func:`scheme_table_markdown`; ``python -m repro.coloring.registry``
prints it for manual refreshes, and a test keeps the docs in sync).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, fields
from typing import Any

__all__ = [
    "SchemeInfo",
    "SCHEMES",
    "ExecutionOptions",
    "ENGINE_KEYWORDS",
    "METHOD_ALIASES",
    "scheme_options",
    "resolve_method",
    "validate_options",
    "unknown_method_error",
    "scheme_table_markdown",
    "execution_table_markdown",
]


# ---------------------------------------------------------------------------
# Per-scheme typed option dataclasses.  Field defaults mirror the scheme
# functions' signatures exactly; metadata["doc"] feeds the docs table.
# ---------------------------------------------------------------------------
def _opt(default, doc: str):
    return field(default=default, metadata={"doc": doc})


@dataclass(frozen=True)
class ExecutionOptions:
    """Scheme-independent options the execution layer consumes.

    These keywords are legal on every method key; ``validate_options``
    never forwards them to a scheme, and the did-you-mean machinery
    suggests them for near-miss spellings.  The docs table is generated
    from this dataclass (:func:`execution_table_markdown`).
    """

    backend: Any = _opt(None, "execution substrate for device schemes: "
                              "'gpusim' (default), 'cpusim', 'compiled' "
                              "(JIT-accelerated gpusim, identical results), "
                              "or an instance")
    backend_opts: Any = _opt(None, "constructor kwargs for a string "
                                   "backend= spec (e.g. jit=, seed=, "
                                   "cache_model=); rejected alongside a "
                                   "backend *instance*")
    config: Any = _opt(None, "a RunConfig bundling the options on this "
                             "table; merged with explicit keywords, "
                             "setting one both ways is an error")
    device: Any = _opt(None, "legacy spelling: a Device wrapped in a GpuSimBackend")
    context: Any = _opt(None, "shared ExecutionContext (cached uploads, pooled buffers)")
    observe: Any = _opt(None, "observation surface: 'trace'/'profile'/'rounds', "
                              "a Tracer, a Recorder, or an Observation")
    workers: Any = _opt(None, "process-pool size for color_many "
                              "(None/0/1 = serial in-process)")
    scheduler: Any = _opt(None, "'serial', 'process', or a Scheduler instance "
                                "(default: inferred from workers=)")
    cache: Any = _opt(None, "content-addressed result cache: 'memory', a "
                            "directory path, or a ResultCache")
    store: Any = _opt(None, "graph arena for worker processes: 'heap' "
                            "(pickle, default), 'shm' (shared-memory "
                            "segments), 'mmap'/'mmap:<dir>' (on-disk "
                            "containers), or a GraphStore instance "
                            "(see docs/STORAGE.md)")
    mex: Any = _opt(None, "forbidden-color kernel strategy: 'bitmask', "
                          "'bitmask:N' (word limit), or 'sort' "
                          "(results are identical; speed differs)")
    faults: Any = _opt(None, "fault-injection plan: a FaultPlan, a plan "
                             "spec string ('seed=7; site: k=v, ...'), or a "
                             "Robustness bundle (see docs/ROBUSTNESS.md)")
    health: Any = _opt(None, "guard-rail policy: 'strict', 'off', or a "
                             "HealthPolicy (watchdog, invariants, audit, "
                             "degradation chains)")
    devices: Any = _opt(None, "simulated device count for "
                              "color_distributed (one contiguous shard "
                              "per device; colors are identical across "
                              "device counts, so this never forks cache "
                              "keys)")
    topology: Any = _opt(None, "interconnect model pricing the halo "
                               "exchange: 'pcie' (shared bus), 'nvlink' "
                               "(all-to-all), 'ring', or a Topology "
                               "instance (cost model only; never enters "
                               "cache keys)")
    deadline_ms: Any = _opt(None, "wall-clock budget in milliseconds, "
                                  "checked cooperatively at round "
                                  "boundaries; expiry raises a structured "
                                  "DeadlineExceeded (never enters cache "
                                  "keys — see docs/ROBUSTNESS.md)")

    @classmethod
    def option_rows(cls) -> list[tuple[str, object, str]]:
        """(name, default, doc) per option, for tables and errors."""
        return [
            (f.name, f.default, f.metadata.get("doc", ""))
            for f in fields(cls)
        ]


#: Keywords consumed by the execution layer, never by a scheme —
#: derived from the typed :class:`ExecutionOptions` surface.
ENGINE_KEYWORDS = frozenset(f.name for f in fields(ExecutionOptions))


@dataclass(frozen=True)
class SequentialOptions:
    ordering: str = _opt("natural", "vertex visit order (key into ORDERINGS)")
    seed: int = _opt(0, "seed for randomized orderings")
    cpu: Any = _opt(None, "reuse a simulated CPU instance")


@dataclass(frozen=True)
class GmOptions:
    cores: Any = _opt(None, "OpenMP-style core count (None = unpriced reference)")


@dataclass(frozen=True)
class JpOptions:
    seed: int = _opt(0, "priority RNG seed")
    use_mex: bool = _opt(False, "smallest-available color instead of round number")


@dataclass(frozen=True)
class JpLfOptions:
    seed: int = _opt(0, "tie-break RNG seed")


@dataclass(frozen=True)
class JpGpuOptions:
    block_size: int = _opt(128, "CUDA thread-block size")
    seed: int = _opt(0, "priority RNG seed")


@dataclass(frozen=True)
class ThreeStepGMOptions:
    partition_size: int = _opt(512, "vertices per GPU partition (step 1)")
    block_size: int = _opt(128, "CUDA thread-block size")
    cpu: Any = _opt(None, "reuse a simulated CPU for step 3")


@dataclass(frozen=True)
class TopologyOptions:
    block_size: int = _opt(128, "CUDA thread-block size (Fig. 8 sweep)")
    conflict_scope: str = _opt("all", "'all' (Alg. 4 verbatim) or 'active'")
    conflict_parallelism: str = _opt("vertex", "'vertex' or 'edge' conflict kernel")


@dataclass(frozen=True)
class DataDrivenOptions:
    block_size: int = _opt(128, "CUDA thread-block size")
    worklist_strategy: str = _opt("scan", "'scan' (Fig. 5 optimized) or 'atomic'")
    load_balance: bool = _opt(False, "warp-centric hub processing")


@dataclass(frozen=True)
class DataDrivenLbOptions:
    block_size: int = _opt(128, "CUDA thread-block size")
    worklist_strategy: str = _opt("scan", "'scan' or 'atomic' worklist push")


@dataclass(frozen=True)
class CsrColorOptions:
    num_hashes: int = _opt(3, "hash functions per round (2N colors/round)")
    block_size: int = _opt(128, "CUDA thread-block size")
    seed: int = _opt(0, "hash-family seed")
    compare_all: bool = _opt(True, "compare against all neighbors (cuSPARSE) or active only")
    fraction: float = _opt(1.0, "stop electing at this colored fraction (fractionToColor)")


@dataclass(frozen=True)
class BalancedGreedyOptions:
    seed: int = _opt(0, "visit-order shuffle seed")


@dataclass(frozen=True)
class DsaturOptions:
    pass


@dataclass(frozen=True)
class IteratedGreedyOptions:
    initial: Any = _opt(None, "starting coloring (default: first-fit greedy)")
    iterations: int = _opt(8, "number of class-blocked repasses")
    seed: int = _opt(0, "class-shuffle seed")


@dataclass(frozen=True)
class SchemeInfo:
    """Registry row: everything the API layer knows about one method key."""

    name: str
    kind: str  # 'device' (engine-backed) | 'host' (functional/CPU-priced)
    options: type
    summary: str
    paper: str = ""  # paper anchor (algorithm/figure) when applicable

    def option_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in fields(self.options))

    def option_rows(self) -> list[tuple[str, object, str]]:
        """(name, default, doc) per option, for tables and errors."""
        return [
            (f.name, f.default, f.metadata.get("doc", ""))
            for f in fields(self.options)
        ]


#: The full method-key registry, in the order docs present them.
SCHEMES: dict[str, SchemeInfo] = {
    info.name: info
    for info in (
        SchemeInfo("sequential", "host", SequentialOptions,
                   "greedy on the simulated Xeon (the baseline)", "Alg. 1"),
        SchemeInfo("3step-gm", "device", ThreeStepGMOptions,
                   "Grosset et al. partition + CPU conflict resolution", "Fig. 1"),
        SchemeInfo("topo-base", "device", TopologyOptions,
                   "topology-driven speculative greedy", "Alg. 4"),
        SchemeInfo("topo-ldg", "device", TopologyOptions,
                   "topology-driven + read-only-cache loads", "Alg. 4 / Fig. 4"),
        SchemeInfo("data-base", "device", DataDrivenOptions,
                   "data-driven worklist + prefix-sum push", "Alg. 5"),
        SchemeInfo("data-ldg", "device", DataDrivenOptions,
                   "data-driven + __ldg (the paper's best)", "Alg. 5 / Fig. 4"),
        SchemeInfo("data-lb", "device", DataDrivenLbOptions,
                   "data-driven + warp-centric load balancing", "extension"),
        SchemeInfo("data-ldg-lb", "device", DataDrivenLbOptions,
                   "data-driven + __ldg + load balancing", "extension"),
        SchemeInfo("csrcolor", "device", CsrColorOptions,
                   "cuSPARSE multi-hash MIS election", "Fig. 6"),
        SchemeInfo("gm", "host", GmOptions,
                   "Gebremedhin-Manne speculation (functional reference)", "Alg. 2"),
        SchemeInfo("jp", "host", JpOptions,
                   "Jones-Plassmann random-priority MIS", "Alg. 3"),
        SchemeInfo("jp-lf", "host", JpLfOptions,
                   "PLF: largest-degree-first priorities", "Alg. 3"),
        SchemeInfo("jp-gpu", "device", JpGpuOptions,
                   "Jones-Plassmann priced on the simulated device", "extension"),
        SchemeInfo("balanced-greedy", "host", BalancedGreedyOptions,
                   "least-used-color greedy (balance extension)", "extension"),
        SchemeInfo("dsatur", "host", DsaturOptions,
                   "Brélaz saturation-degree greedy", "extension"),
        SchemeInfo("iterated-greedy", "host", IteratedGreedyOptions,
                   "Culberson class-blocked polish (non-increasing colors)",
                   "extension"),
    )
}


def scheme_options(method: str):
    """The typed options dataclass for one method key."""
    return SCHEMES[method].options


#: Accepted spellings for method keys beyond the canonical hyphenated
#: names: underscore twins (shell-completion and keyword-argument
#: friendly) plus historic names.  Every entry point resolves through
#: :func:`resolve_method`, so ``color_graph``, ``color_sharded`` and the
#: CLI accept (and reject) identical spellings with identical errors.
METHOD_ALIASES: dict[str, str] = {
    "data_base": "data-base",
    "data_lb": "data-lb",
    "data_ldg": "data-ldg",
    "data_ldg_lb": "data-ldg-lb",
    "topo_base": "topo-base",
    "topo_ldg": "topo-ldg",
    "jp_gpu": "jp-gpu",
    "jp_lf": "jp-lf",
    "3step_gm": "3step-gm",
    "balanced_greedy": "balanced-greedy",
    "iterated_greedy": "iterated-greedy",
    "csr-color": "csrcolor",
}


def resolve_method(method: str, known, *, entry_point: str | None = None) -> str:
    """Canonicalize ``method`` through :data:`METHOD_ALIASES`.

    Returns the canonical key; raises :func:`unknown_method_error` (with
    ``entry_point`` named) when neither the spelling nor its alias is in
    ``known``.
    """
    candidate = METHOD_ALIASES.get(method, method)
    if candidate in known:
        return candidate
    raise unknown_method_error(method, known, entry_point=entry_point)


def unknown_method_error(
    method: str, known, *, entry_point: str | None = None
) -> ValueError:
    """Build the unknown-method error, with a did-you-mean when close."""
    where = f"{entry_point}(): " if entry_point else ""
    msg = f"{where}unknown method {method!r}; choose from {sorted(known)}"
    close = difflib.get_close_matches(
        method, list(known) + sorted(METHOD_ALIASES), n=2
    )
    if close:
        canon = []
        for c in close:
            c = METHOD_ALIASES.get(c, c)
            if c not in canon:
                canon.append(c)
        msg += f" (did you mean {' or '.join(repr(c) for c in canon)}?)"
    return ValueError(msg)


def validate_options(
    method: str, kwargs: dict, *, entry_point: str | None = None
) -> None:
    """Reject unknown/misspelled scheme keywords for ``method``.

    Engine-level keywords (``device``/``backend``/``context``/...) are the
    execution layer's business and are ignored here.  Raises
    :class:`TypeError` listing the offending keys, close matches, and the
    scheme's valid options with defaults — prefixed with the originating
    ``entry_point`` when given.
    """
    info = SCHEMES.get(method)
    if info is None:  # non-registry method key: nothing to validate against
        return
    valid = set(info.option_names())
    unknown = [
        k for k in kwargs if k not in valid and k not in ENGINE_KEYWORDS
    ]
    if not unknown:
        return
    suggestions = []
    for key in unknown:
        close = difflib.get_close_matches(key, sorted(valid | ENGINE_KEYWORDS), n=1)
        if close:
            suggestions.append(f"did you mean {close[0]!r} instead of {key!r}?")
    option_list = ", ".join(
        f"{name}={default!r}" for name, default, _ in info.option_rows()
    ) or "(none)"
    hint = (" " + " ".join(suggestions)) if suggestions else ""
    where = f"{entry_point}(): " if entry_point else ""
    raise TypeError(
        f"{where}{method!r} got unknown option(s) {sorted(unknown)}.{hint} "
        f"Valid options for {method!r}: {option_list}"
    )


def scheme_table_markdown() -> str:
    """The docs/API.md scheme table, generated from the registry."""
    lines = [
        "| method key | kind | options (defaults) | summary | paper |",
        "|---|---|---|---|---|",
    ]
    for info in SCHEMES.values():
        opts = "<br>".join(
            f"`{name}={default!r}` — {doc}" for name, default, doc in info.option_rows()
        ) or "—"
        lines.append(
            f"| `{info.name}` | {info.kind} | {opts} | {info.summary} "
            f"| {info.paper or '—'} |"
        )
    return "\n".join(lines)


def execution_table_markdown() -> str:
    """The docs/API.md execution-options table, generated from
    :class:`ExecutionOptions` (the scheme-independent keywords)."""
    lines = [
        "| option (default) | consumed by |",
        "|---|---|",
    ]
    for name, default, doc in ExecutionOptions.option_rows():
        lines.append(f"| `{name}={default!r}` | {doc} |")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual docs refresh
    print(scheme_table_markdown())
    print()
    print(execution_table_markdown())
