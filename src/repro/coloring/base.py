"""Common result types and verification for all coloring schemes.

Colors are 1-based ``int32``; 0 means *uncolored*.  Every scheme returns a
:class:`ColoringResult` whose :meth:`validate` proves properness — the test
suite calls it on every scheme x graph combination, because speculative
algorithms are exactly the kind that can silently leave conflicts behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "ColoringError",
    "ColoringResult",
    "RESULT_SCHEMA_VERSION",
    "count_conflicts",
    "color_class_sizes",
    "save_result",
    "load_result",
]

COLOR_DTYPE = np.int32

#: Current (and only) ``ColoringResult.to_dict`` schema version.
RESULT_SCHEMA_VERSION = 1


class ColoringError(RuntimeError):
    """Raised when a produced coloring fails verification."""


#: ``extra`` keys migrated to the typed result surface.  Reading them
#: through the bag was deprecated (DeprecationWarning), escalated
#: (FutureWarning), and is now removed: the typed properties are the only
#: supported spelling.
_MIGRATED_EXTRA = {
    "observation": "result.observation",
    "cache_hit": "result.cache_hit",
    "shard_stats": "result.shard_stats",
    "robustness": "result.robustness",
}


def _removed_extra_message(key: str) -> str:
    return (
        f"result.extra[{key!r}] was removed; read {_MIGRATED_EXTRA[key]} "
        f"instead (or result.to_dict(schema_version=1) for the documented "
        f"mapping — see docs/API.md, 'Deprecations')"
    )


class _ExtraBag(dict):
    """Scheme-specific result outputs (``block_size``, ``fraction``, ...).

    The typed keys that used to live here — ``observation``,
    ``cache_hit``, ``shard_stats``, ``robustness`` — completed their
    deprecation cycle: reading them through the bag now raises with a
    pointer at the same-named :class:`ColoringResult` property.  Writes
    stay open (the engine still populates the bag), and scheme-specific
    keys read normally.
    """

    def __getitem__(self, key):
        if key in _MIGRATED_EXTRA:
            raise KeyError(_removed_extra_message(key))
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        if key in _MIGRATED_EXTRA:
            raise KeyError(_removed_extra_message(key))
        return dict.get(self, key, default)

    def peek(self, key, default=None):
        """Direct read, for the typed accessors themselves."""
        return dict.get(self, key, default)


def count_conflicts(graph: CSRGraph, colors: np.ndarray) -> int:
    """Number of undirected edges whose endpoints share a (positive) color."""
    u, v = graph.edge_endpoints()
    keep = u < v
    u, v = u[keep], v[keep]
    same = (colors[u] == colors[v]) & (colors[u] > 0)
    return int(same.sum())


def color_class_sizes(colors: np.ndarray) -> np.ndarray:
    """``sizes[c-1]`` = number of vertices with color ``c`` (1-based input)."""
    colors = np.asarray(colors)
    pos = colors[colors > 0]
    if pos.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(pos, minlength=int(pos.max()) + 1)[1:]


@dataclass
class ColoringResult:
    """Outcome of one coloring run.

    Attributes
    ----------
    colors:
        Per-vertex colors, 1-based; verified complete by :meth:`validate`.
    scheme:
        Scheme identifier (``sequential``, ``topo-base``, ``csrcolor``, ...).
    iterations:
        Outer (bulk-synchronous) rounds until convergence.
    gpu_time_us / cpu_time_us / transfer_time_us:
        Simulated time components; ``total_time_us`` is their sum and is
        what the paper's speedup figures compare.
    num_kernel_launches:
        Kernel launches issued (each also carries fixed launch overhead).
    profiles:
        Per-launch :class:`~repro.gpusim.timing.KernelProfile` objects, for
        the Fig. 3-style analyses.
    """

    colors: np.ndarray
    scheme: str
    iterations: int = 0
    gpu_time_us: float = 0.0
    cpu_time_us: float = 0.0
    transfer_time_us: float = 0.0
    num_kernel_launches: int = 0
    profiles: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.extra, _ExtraBag):
            self.extra = _ExtraBag(self.extra)

    @property
    def num_colors(self) -> int:
        """Number of distinct colors used."""
        return int(self.colors.max()) if self.colors.size else 0

    @property
    def total_time_us(self) -> float:
        return self.gpu_time_us + self.cpu_time_us + self.transfer_time_us

    # -- the typed surface over the legacy ``extra`` bag ----------------
    @property
    def observation(self):
        """The :class:`~repro.obs.observe.Observation` attached to this
        run (``observe=`` was passed), or ``None``."""
        return self.extra.peek("observation")

    @property
    def cache_hit(self) -> bool:
        """True when this result was served from a result cache instead
        of executing the scheme (see :mod:`repro.parallel.cache`)."""
        return bool(self.extra.peek("cache_hit", False))

    @property
    def shard_stats(self) -> dict | None:
        """Per-shard and boundary-resolution statistics from
        partition-sharded coloring (:func:`repro.parallel.color_sharded`),
        or ``None`` for unsharded runs."""
        return self.extra.peek("shard_stats")

    @property
    def robustness(self) -> dict | None:
        """The fault/degradation report of this run (``faults=`` /
        ``health=`` was passed, or a resilience feature — deadline,
        checkpoint, breaker — was active; see :mod:`repro.faults` and
        :mod:`repro.resilience`), or ``None``.  Keys: ``plan``,
        ``seed``, ``fired``, ``degradations``, plus ``breaker`` /
        ``checkpoint`` / ``deadline`` / ``resumed`` when those features
        ran."""
        return self.extra.peek("robustness")

    def to_dict(self, schema_version: int = RESULT_SCHEMA_VERSION) -> dict:
        """The versioned, documented mapping view of this result.

        Schema version 1 keys:

        ==================== ==============================================
        ``schema_version``   the integer ``1``
        ``scheme``           scheme identifier string
        ``colors``           the per-vertex color array (``int32``, 1-based)
        ``num_colors``       distinct colors used
        ``iterations``       bulk-synchronous rounds to convergence
        ``gpu_time_us`` / ``cpu_time_us`` / ``transfer_time_us`` /
        ``total_time_us``    simulated time components and their sum
        ``num_kernel_launches``  kernel launches issued
        ``observation``      attached ``Observation`` or ``None``
        ``cache_hit``        served from a result cache (bool)
        ``shard_stats``      sharded-run statistics dict or ``None``
        ``robustness``       fault/degradation/resilience report or ``None``
        ==================== ==============================================

        Downstream consumers read this (or the same-named typed
        properties); ``result.extra`` holds only scheme-specific outputs
        — the migrated keys above raise when keyed from the bag.
        """
        if schema_version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unknown ColoringResult schema_version {schema_version!r}; "
                f"this build writes version {RESULT_SCHEMA_VERSION}"
            )
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "scheme": self.scheme,
            "colors": self.colors,
            "num_colors": self.num_colors,
            "iterations": self.iterations,
            "gpu_time_us": self.gpu_time_us,
            "cpu_time_us": self.cpu_time_us,
            "transfer_time_us": self.transfer_time_us,
            "total_time_us": self.total_time_us,
            "num_kernel_launches": self.num_kernel_launches,
            "observation": self.observation,
            "cache_hit": self.cache_hit,
            "shard_stats": self.shard_stats,
            "robustness": self.robustness,
        }

    def validate(self, graph: CSRGraph) -> None:
        """Raise :class:`ColoringError` unless complete and proper."""
        if self.colors.shape != (graph.num_vertices,):
            raise ColoringError(
                f"{self.scheme}: color array has shape {self.colors.shape}, "
                f"expected ({graph.num_vertices},)"
            )
        uncolored = int((self.colors <= 0).sum())
        if uncolored:
            raise ColoringError(f"{self.scheme}: {uncolored} vertices left uncolored")
        conflicts = count_conflicts(graph, self.colors)
        if conflicts:
            raise ColoringError(f"{self.scheme}: {conflicts} conflicting edges remain")

    def balance(self) -> float:
        """Color-class balance: max class size over mean class size (>= 1).

        1.0 is perfectly balanced; large values mean a few huge classes —
        relevant when colors schedule parallel work (a straggler class
        serializes the computation it gates).
        """
        sizes = color_class_sizes(self.colors)
        if sizes.size == 0:
            return 1.0
        return float(sizes.max() / sizes.mean())

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.scheme}: {self.num_colors} colors, "
            f"{self.iterations} iterations, "
            f"{self.total_time_us:.1f} us simulated "
            f"(gpu {self.gpu_time_us:.1f} + cpu {self.cpu_time_us:.1f} "
            f"+ pcie {self.transfer_time_us:.1f}), "
            f"{self.num_kernel_launches} launches"
        )


def save_result(result: "ColoringResult", path) -> None:
    """Persist a coloring result (colors + metadata) as ``.npz``.

    Profiles are summarized, not serialized — the colors, counts and
    timings are what experiments need to be reproducible.
    """
    from pathlib import Path

    np.savez_compressed(
        Path(path),
        colors=result.colors,
        scheme=np.array(result.scheme),
        iterations=np.array(result.iterations),
        gpu_time_us=np.array(result.gpu_time_us),
        cpu_time_us=np.array(result.cpu_time_us),
        transfer_time_us=np.array(result.transfer_time_us),
        num_kernel_launches=np.array(result.num_kernel_launches),
    )


def load_result(path) -> "ColoringResult":
    """Load a result previously written by :func:`save_result`."""
    from pathlib import Path

    with np.load(Path(path), allow_pickle=False) as data:
        return ColoringResult(
            colors=data["colors"].astype(COLOR_DTYPE),
            scheme=str(data["scheme"]),
            iterations=int(data["iterations"]),
            gpu_time_us=float(data["gpu_time_us"]),
            cpu_time_us=float(data["cpu_time_us"]),
            transfer_time_us=float(data["transfer_time_us"]),
            num_kernel_launches=int(data["num_kernel_launches"]),
        )
