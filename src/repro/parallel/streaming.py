"""Out-of-core streaming: color graphs bigger than RAM, window by window.

:func:`color_sharded` holds every shard's induced subgraph alive at once
(they are one job list), so peak memory is ``O(m)`` no matter the shard
count.  This module is the bounded-memory sibling: the vertex range is
cut into contiguous **windows** (the same ``linspace`` bounds as
:func:`~repro.graph.partition.block_partition`, so a ``num_windows=k``
stream colors the exact vertex blocks a ``num_shards=k`` sharded run
does), and each window's induced subgraph is materialized, colored
through one shared :class:`~repro.engine.context.ExecutionContext`, and
dropped before the next window is touched.  The backing graph is only
ever *sliced* — pair it with an mmap-backed store
(:class:`~repro.graph.store.MmapStore` /
:func:`~repro.graph.io.stream.read_csr_bin`) and the full topology never
enters private memory at all: peak RSS is ``O(n + window)``, which is
what lets a 100M+ edge graph color on a small box.

The repair phase is the same speculate-then-resolve shape as sharded
coloring (paper Alg. 4), restated to never touch ``O(m)`` at once: each
Jacobi round scans for conflicted edges window by window, marks the
higher-id endpoint of every conflict, and recolors the marked vertices
from a snapshot — byte-identical decisions to the sharded resolver,
which scans the same edges in one array.  Validation is windowed too
(``ColoringResult.validate`` would expand all edge endpoints on the
heap), so the streaming path self-checks with bounded memory.

Timing model: windows run **sequentially on one device** (that is the
point — one box, bounded memory), so device/transfer times *sum* over
windows, unlike the sharded makespan maximum.
"""

from __future__ import annotations

import numpy as np

from ..coloring.base import COLOR_DTYPE, ColoringResult
from ..graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE
from ..obs.observe import resolve_observe

__all__ = ["plan_windows", "window_subgraph", "color_streamed"]

#: Subgraph construction needs a few transient arrays per window (the
#: slice, its mask, the compacted copy), so a memory budget maps to a
#: window size of roughly ``budget / _WINDOW_OVERHEAD``.
_WINDOW_OVERHEAD = 4


def plan_windows(
    graph,
    *,
    num_windows: int | None = None,
    memory_budget_mb: float | None = None,
) -> np.ndarray:
    """Contiguous window bounds ``b`` with windows ``[b[i], b[i+1])``.

    With ``num_windows``, bounds replicate
    :func:`~repro.graph.partition.block_partition` exactly (streaming and
    sharded runs over ``k`` pieces then color identical vertex blocks).
    With ``memory_budget_mb``, the window count is chosen so one
    window's working set — topology slice plus construction scratch —
    fits the budget.  At least one of the two must be given; both raises.
    """
    n = graph.num_vertices
    if (num_windows is None) == (memory_budget_mb is None):
        raise ValueError("give exactly one of num_windows / memory_budget_mb")
    if num_windows is None:
        budget = float(memory_budget_mb) * (1 << 20)
        if budget <= 0:
            raise ValueError("memory_budget_mb must be positive")
        window_bytes = max(1.0, budget / _WINDOW_OVERHEAD)
        num_windows = max(1, int(np.ceil(graph.memory_bytes() / window_bytes)))
    num_windows = max(1, min(int(num_windows), max(n, 1)))
    return np.linspace(0, n, num_windows + 1).astype(np.int64)


def window_subgraph(graph, lo: int, hi: int) -> CSRGraph:
    """Induced subgraph on the contiguous vertex range ``[lo, hi)``.

    Equivalent to ``graph.subgraph_mask`` on that block (for the
    canonical row-sorted adjacency our builders produce) but computed
    from one CSR slice: only ``O(window)`` bytes are ever materialized,
    and the backing arrays are merely indexed — an mmap graph pages in
    just this range.
    """
    R, C = graph.row_offsets, graph.col_indices
    base = int(R[lo])
    sub_R_raw = np.asarray(R[lo : hi + 1], dtype=np.int64) - base
    window = np.asarray(C[base : int(R[hi])])
    internal = (window >= lo) & (window < hi)
    kept_prefix = np.zeros(window.size + 1, dtype=np.int64)
    np.cumsum(internal, out=kept_prefix[1:])
    sub_R = kept_prefix[sub_R_raw].astype(OFFSET_DTYPE)
    sub_C = (window[internal] - lo).astype(VERTEX_DTYPE)
    return CSRGraph.from_validated_arrays(
        sub_R, sub_C, name=f"{graph.name}[{lo}:{hi}]"
    )


def _window_edges(graph, lo: int, hi: int):
    """``(sources, targets)`` of the adjacency entries rowed in ``[lo, hi)``."""
    R, C = graph.row_offsets, graph.col_indices
    degrees = np.asarray(R[lo : hi + 1], dtype=np.int64)
    degrees = degrees[1:] - degrees[:-1]
    sources = np.repeat(np.arange(lo, hi, dtype=np.int64), degrees)
    targets = np.asarray(C[int(R[lo]) : int(R[hi])], dtype=np.int64)
    return sources, targets


def _mark_conflict_losers(graph, colors, bounds, losers_mask) -> int:
    """Flag the higher-id endpoint of every conflicted edge; count edges.

    One window at a time — every (symmetric) edge is seen from both
    endpoint rows, so scanning all windows covers the whole edge set
    without ever expanding it at once.  Each *undirected* conflict is
    counted twice, matching ``count_conflicts``'s directed convention.
    """
    conflicted_entries = 0
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        u, v = _window_edges(graph, int(lo), int(hi))
        bad = colors[u] == colors[v]
        if bad.any():
            conflicted_entries += int(bad.sum())
            losers_mask[np.maximum(u[bad], v[bad])] = True
    return conflicted_entries


def color_streamed(
    graph,
    method: str = "data-ldg",
    *,
    num_windows: int | None = None,
    memory_budget_mb: float | None = None,
    backend=None,
    backend_opts=None,
    config=None,
    observe=None,
    validate: bool = True,
    max_resolution_rounds: int = 16,
    faults=None,
    health=None,
    **options,
) -> ColoringResult:
    """Color ``graph`` window by window with bounded peak memory.

    Each contiguous window's induced subgraph is colored through one
    shared context and evicted before the next is built; boundary
    conflicts are repaired with the windowed Jacobi resolver (sequential
    sweep after ``max_resolution_rounds``, same as sharded coloring).
    ``validate=True`` runs the *windowed* conflict check — the standard
    checker would materialize every edge endpoint on the heap.

    Returns a checker-valid coloring whose ``shard_stats`` mirrors the
    sharded layout with ``mode="stream"`` plus the peak window footprint.
    """
    from ..engine.context import ExecutionContext

    if config is not None:
        from ..engine.config import normalize_config

        merged = normalize_config(
            "color_streamed",
            config,
            {
                "backend": backend, "backend_opts": backend_opts,
                "faults": faults, "health": health, "observe": observe,
            },
        )
        backend, backend_opts = merged["backend"], merged["backend_opts"]
        faults, health = merged["faults"], merged["health"]
        observe = merged["observe"]
    from ..coloring.api import METHODS
    from ..coloring.registry import resolve_method

    method = resolve_method(method, METHODS, entry_point="color_streamed")
    bounds = plan_windows(
        graph, num_windows=num_windows, memory_budget_mb=memory_budget_mb
    )
    observation = resolve_observe(observe)
    tracer = observation.tracer
    name = getattr(graph, "name", "?")
    num_win = len(bounds) - 1

    run_span = None
    if tracer is not None:
        run_span = tracer.begin(
            f"streamed:{name}", "run",
            scheme=f"streamed({method})", graph=name,
            vertices=graph.num_vertices, edges=graph.num_edges,
            windows=num_win,
        )
    try:
        ctx = ExecutionContext(
            backend=backend,
            observe=observation if observation.active else None,
            faults=faults, health=health,
            **dict(backend_opts or {}),
        )
        colors = np.zeros(graph.num_vertices, dtype=COLOR_DTYPE)
        window_rows = []
        peak_window_bytes = 0
        gpu_us = cpu_us = xfer_us = 0.0
        launches = 0
        max_iterations = 0
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            lo, hi = int(lo), int(hi)
            if hi <= lo:
                continue
            sub = window_subgraph(graph, lo, hi)
            peak_window_bytes = max(peak_window_bytes, sub.memory_bytes())
            res = ctx.run(sub, method, validate=False, **options)
            colors[lo:hi] = res.colors
            gpu_us += res.gpu_time_us
            cpu_us += res.cpu_time_us
            xfer_us += res.transfer_time_us
            launches += res.num_kernel_launches
            max_iterations = max(max_iterations, res.iterations)
            window_rows.append({
                "window": [lo, hi],
                "vertices": sub.num_vertices,
                "edges": sub.num_edges,
                "num_colors": res.num_colors,
                "iterations": res.iterations,
                "total_time_us": res.total_time_us,
            })
            ctx.evict(sub)  # the window's device buffers return to the pool
            del sub

        # -- boundary repair: windowed Jacobi, then a sequential sweep --
        from .sharded import _mex

        rounds = 0
        recolored = 0
        fallback = False
        losers_mask = np.zeros(graph.num_vertices, dtype=bool)
        while True:
            losers_mask[:] = False
            conflicted = _mark_conflict_losers(graph, colors, bounds, losers_mask)
            if not conflicted:
                break
            losers = np.nonzero(losers_mask)[0]
            if rounds >= max_resolution_rounds:
                fallback = True
                for w in losers:
                    colors[w] = _mex(colors[graph.neighbors(w)])
                recolored += int(losers.size)
                break
            snapshot = colors.copy()
            for w in losers:
                colors[w] = _mex(snapshot[graph.neighbors(w)])
            recolored += int(losers.size)
            rounds += 1

        if validate:
            losers_mask[:] = False
            remaining = _mark_conflict_losers(graph, colors, bounds, losers_mask)
            if remaining:
                raise AssertionError(
                    f"streamed coloring left {remaining} conflicted edges"
                )
            if graph.num_vertices and int(colors.min()) < 1:
                raise AssertionError("streamed coloring left uncolored vertices")
        if tracer is not None:
            tracer.event(
                "boundary-resolution", "resolve",
                rounds=rounds, recolored=recolored, fallback=int(fallback),
            )

        result = ColoringResult(
            colors=colors,
            scheme=f"streamed({method})x{num_win}",
            iterations=max_iterations + rounds,
            gpu_time_us=gpu_us,
            cpu_time_us=cpu_us,
            transfer_time_us=xfer_us,
            num_kernel_launches=launches,
        )
        result.extra["shard_stats"] = {
            "num_shards": num_win,
            "method": method,
            "mode": "stream",
            "shards": window_rows,
            "resolution_rounds": rounds,
            "recolored": recolored,
            "fallback": fallback,
            "peak_window_bytes": peak_window_bytes,
            # Uniform boundary-resolution keys (see color_distributed):
            # windows run in one address space, so rounds are global
            # synchronizations and no halo bytes move.
            "sync_rounds": rounds,
            "halo_bytes_modeled": 0,
            "speculation_hits": 0,
        }
        if observation.active:
            result.extra.setdefault("observation", observation)
        if run_span is not None:
            tracer.end(
                run_span,
                colors=result.num_colors,
                iterations=result.iterations,
                resolution_rounds=rounds,
            )
            run_span = None
        return result
    finally:
        if run_span is not None and tracer is not None:
            tracer.end(run_span)
