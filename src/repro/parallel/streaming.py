"""Out-of-core streaming: color graphs bigger than RAM, window by window.

:func:`color_sharded` holds every shard's induced subgraph alive at once
(they are one job list), so peak memory is ``O(m)`` no matter the shard
count.  This module is the bounded-memory sibling: the vertex range is
cut into contiguous **windows** (the same ``linspace`` bounds as
:func:`~repro.graph.partition.block_partition`, so a ``num_windows=k``
stream colors the exact vertex blocks a ``num_shards=k`` sharded run
does), and each window's induced subgraph is materialized, colored
through one shared :class:`~repro.engine.context.ExecutionContext`, and
dropped before the next window is touched.  The backing graph is only
ever *sliced* — pair it with an mmap-backed store
(:class:`~repro.graph.store.MmapStore` /
:func:`~repro.graph.io.stream.read_csr_bin`) and the full topology never
enters private memory at all: peak RSS is ``O(n + window)``, which is
what lets a 100M+ edge graph color on a small box.

The repair phase is the same speculate-then-resolve shape as sharded
coloring (paper Alg. 4), restated to never touch ``O(m)`` at once: each
Jacobi round scans for conflicted edges window by window, marks the
higher-id endpoint of every conflict, and recolors the marked vertices
from a snapshot — byte-identical decisions to the sharded resolver,
which scans the same edges in one array.  Validation is windowed too
(``ColoringResult.validate`` would expand all edge endpoints on the
heap), so the streaming path self-checks with bounded memory.

Timing model: windows run **sequentially on one device** (that is the
point — one box, bounded memory), so device/transfer times *sum* over
windows, unlike the sharded makespan maximum.
"""

from __future__ import annotations

import numpy as np

from ..coloring.base import COLOR_DTYPE, ColoringResult
from ..faults import Robustness, resolve_robustness
from ..graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE
from ..obs.observe import resolve_observe
from ..resilience.checkpoint import Checkpointer, load_resume, run_fingerprint
from ..resilience.deadline import DeadlineExceeded, resolve_control

__all__ = ["plan_windows", "window_subgraph", "color_streamed"]

#: Subgraph construction needs a few transient arrays per window (the
#: slice, its mask, the compacted copy), so a memory budget maps to a
#: window size of roughly ``budget / _WINDOW_OVERHEAD``.
_WINDOW_OVERHEAD = 4


def plan_windows(
    graph,
    *,
    num_windows: int | None = None,
    memory_budget_mb: float | None = None,
) -> np.ndarray:
    """Contiguous window bounds ``b`` with windows ``[b[i], b[i+1])``.

    With ``num_windows``, bounds replicate
    :func:`~repro.graph.partition.block_partition` exactly (streaming and
    sharded runs over ``k`` pieces then color identical vertex blocks).
    With ``memory_budget_mb``, the window count is chosen so one
    window's working set — topology slice plus construction scratch —
    fits the budget.  At least one of the two must be given; both raises.
    """
    n = graph.num_vertices
    if (num_windows is None) == (memory_budget_mb is None):
        raise ValueError("give exactly one of num_windows / memory_budget_mb")
    if num_windows is None:
        budget = float(memory_budget_mb) * (1 << 20)
        if budget <= 0:
            raise ValueError("memory_budget_mb must be positive")
        window_bytes = max(1.0, budget / _WINDOW_OVERHEAD)
        num_windows = max(1, int(np.ceil(graph.memory_bytes() / window_bytes)))
    num_windows = max(1, min(int(num_windows), max(n, 1)))
    return np.linspace(0, n, num_windows + 1).astype(np.int64)


def window_subgraph(graph, lo: int, hi: int) -> CSRGraph:
    """Induced subgraph on the contiguous vertex range ``[lo, hi)``.

    Equivalent to ``graph.subgraph_mask`` on that block (for the
    canonical row-sorted adjacency our builders produce) but computed
    from one CSR slice: only ``O(window)`` bytes are ever materialized,
    and the backing arrays are merely indexed — an mmap graph pages in
    just this range.
    """
    R, C = graph.row_offsets, graph.col_indices
    base = int(R[lo])
    sub_R_raw = np.asarray(R[lo : hi + 1], dtype=np.int64) - base
    window = np.asarray(C[base : int(R[hi])])
    internal = (window >= lo) & (window < hi)
    kept_prefix = np.zeros(window.size + 1, dtype=np.int64)
    np.cumsum(internal, out=kept_prefix[1:])
    sub_R = kept_prefix[sub_R_raw].astype(OFFSET_DTYPE)
    sub_C = (window[internal] - lo).astype(VERTEX_DTYPE)
    return CSRGraph.from_validated_arrays(
        sub_R, sub_C, name=f"{graph.name}[{lo}:{hi}]"
    )


def _window_edges(graph, lo: int, hi: int):
    """``(sources, targets)`` of the adjacency entries rowed in ``[lo, hi)``."""
    R, C = graph.row_offsets, graph.col_indices
    degrees = np.asarray(R[lo : hi + 1], dtype=np.int64)
    degrees = degrees[1:] - degrees[:-1]
    sources = np.repeat(np.arange(lo, hi, dtype=np.int64), degrees)
    targets = np.asarray(C[int(R[lo]) : int(R[hi])], dtype=np.int64)
    return sources, targets


def _mark_conflict_losers(graph, colors, bounds, losers_mask) -> int:
    """Flag the higher-id endpoint of every conflicted edge; count edges.

    One window at a time — every (symmetric) edge is seen from both
    endpoint rows, so scanning all windows covers the whole edge set
    without ever expanding it at once.  Each *undirected* conflict is
    counted twice, matching ``count_conflicts``'s directed convention.
    """
    conflicted_entries = 0
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        u, v = _window_edges(graph, int(lo), int(hi))
        bad = colors[u] == colors[v]
        if bad.any():
            conflicted_entries += int(bad.sum())
            losers_mask[np.maximum(u[bad], v[bad])] = True
    return conflicted_entries


def color_streamed(
    graph,
    method: str = "data-ldg",
    *,
    num_windows: int | None = None,
    memory_budget_mb: float | None = None,
    backend=None,
    backend_opts=None,
    config=None,
    observe=None,
    validate: bool = True,
    max_resolution_rounds: int = 16,
    faults=None,
    health=None,
    deadline_ms=None,
    checkpoint=None,
    checkpoint_every: int = 1,
    resume=None,
    **options,
) -> ColoringResult:
    """Color ``graph`` window by window with bounded peak memory.

    Each contiguous window's induced subgraph is colored through one
    shared context and evicted before the next is built; boundary
    conflicts are repaired with the windowed Jacobi resolver (sequential
    sweep after ``max_resolution_rounds``, same as sharded coloring).
    ``validate=True`` runs the *windowed* conflict check — the standard
    checker would materialize every edge endpoint on the heap.

    ``deadline_ms`` (a number or a ready
    :class:`~repro.resilience.RunControl`) is checked before every
    window and repair round, raising the structured
    :class:`~repro.resilience.DeadlineExceeded`.  ``checkpoint=<path>``
    atomically snapshots colors + accumulators after each completed
    window (rounds ``1..W``) and repair round (``W+1..``) at the
    ``checkpoint_every`` cadence; ``resume=<path>`` restores a matching
    checkpoint — completed windows are skipped and the final colors are
    byte-identical to an uninterrupted run.  A missing resume file is a
    normal fresh start.

    Returns a checker-valid coloring whose ``shard_stats`` mirrors the
    sharded layout with ``mode="stream"`` plus the peak window footprint.
    """
    from ..engine.context import ExecutionContext

    if config is not None:
        from ..engine.config import normalize_config

        merged = normalize_config(
            "color_streamed",
            config,
            {
                "backend": backend, "backend_opts": backend_opts,
                "faults": faults, "health": health, "observe": observe,
                "deadline_ms": deadline_ms,
            },
        )
        backend, backend_opts = merged["backend"], merged["backend_opts"]
        faults, health = merged["faults"], merged["health"]
        observe, deadline_ms = merged["observe"], merged["deadline_ms"]
    from ..coloring.api import METHODS
    from ..coloring.registry import resolve_method

    method = resolve_method(method, METHODS, entry_point="color_streamed")
    bounds = plan_windows(
        graph, num_windows=num_windows, memory_budget_mb=memory_budget_mb
    )
    observation = resolve_observe(observe)
    tracer = observation.tracer
    name = getattr(graph, "name", "?")
    num_win = len(bounds) - 1

    robustness = resolve_robustness(faults, health)
    control = resolve_control(deadline_ms)
    if robustness is None and (
        checkpoint is not None or resume is not None or control is not None
    ):
        # Resilience accounting (checkpoint stats, resume provenance,
        # deadline attribution) reports through result.robustness, so
        # opting into any of it gets a bundle even with no fault plan.
        robustness = Robustness()
    if robustness is not None and robustness.log.tracer is None:
        robustness.log.tracer = tracer

    fingerprint = run_fingerprint(
        graph.content_digest(), "stream", method, dict(options), num_win
    )
    ckpt = None
    if checkpoint is not None:
        ckpt = Checkpointer(
            checkpoint, fingerprint=fingerprint, every=checkpoint_every,
            robustness=robustness,
        )
    restored = (
        load_resume(resume, fingerprint=fingerprint, robustness=robustness)
        if resume is not None else None
    )

    def _storm(round_index: int, phase: str, where: str) -> None:
        """deadline-storm: force the budget to expire at this boundary."""
        if robustness is None:
            return
        if robustness.fire(
            "deadline-storm", round=round_index, phase=phase
        ) is None:
            return
        if control is not None and control.deadline is not None:
            d = control.deadline
            raise DeadlineExceeded(
                d.deadline_ms, queued_ms=d.queued_ms,
                running_ms=d.running_ms(), where=f"{where}:forced",
            )
        raise DeadlineExceeded(0.0, where=f"{where}:forced")

    run_span = None
    if tracer is not None:
        run_span = tracer.begin(
            f"streamed:{name}", "run",
            scheme=f"streamed({method})", graph=name,
            vertices=graph.num_vertices, edges=graph.num_edges,
            windows=num_win,
        )
    try:
        ctx = ExecutionContext(
            backend=backend,
            observe=observation if observation.active else None,
            faults=robustness, health=None,
            **dict(backend_opts or {}),
        )
        colors = np.zeros(graph.num_vertices, dtype=COLOR_DTYPE)
        window_rows = []
        peak_window_bytes = 0
        gpu_us = cpu_us = xfer_us = 0.0
        launches = 0
        max_iterations = 0
        rounds = 0
        recolored = 0
        windows_done = 0
        if restored is not None:
            meta_r, arrays_r = restored
            colors[:] = arrays_r["colors"].astype(COLOR_DTYPE, copy=False)
            window_rows = meta_r["window_rows"]
            peak_window_bytes = int(meta_r["peak_window_bytes"])
            gpu_us = float(meta_r["gpu_us"])
            cpu_us = float(meta_r["cpu_us"])
            xfer_us = float(meta_r["xfer_us"])
            launches = int(meta_r["launches"])
            max_iterations = int(meta_r["max_iterations"])
            rounds = int(meta_r["rounds"])
            recolored = int(meta_r["recolored"])
            windows_done = int(meta_r["windows_done"])
            robustness.annotate("resumed", {
                "path": str(resume), "round": int(meta_r["round"]),
                "phase": meta_r.get("phase", "windows"),
            })

        def _ckpt_meta(phase: str) -> dict:
            return {
                "mode": "stream", "graph": name, "phase": phase,
                "windows_done": windows_done, "window_rows": window_rows,
                "peak_window_bytes": peak_window_bytes,
                "gpu_us": gpu_us, "cpu_us": cpu_us, "xfer_us": xfer_us,
                "launches": launches, "max_iterations": max_iterations,
                "rounds": rounds, "recolored": recolored,
            }

        for widx, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            if widx < windows_done:
                continue  # resume: this window's colors are checkpointed
            if control is not None:
                control.check("window")
            _storm(widx, "window", "window")
            lo, hi = int(lo), int(hi)
            if hi <= lo:
                windows_done = widx + 1
                continue
            sub = window_subgraph(graph, lo, hi)
            peak_window_bytes = max(peak_window_bytes, sub.memory_bytes())
            res = ctx.run(sub, method, validate=False, **options)
            colors[lo:hi] = res.colors
            gpu_us += res.gpu_time_us
            cpu_us += res.cpu_time_us
            xfer_us += res.transfer_time_us
            launches += res.num_kernel_launches
            max_iterations = max(max_iterations, res.iterations)
            window_rows.append({
                "window": [lo, hi],
                "vertices": sub.num_vertices,
                "edges": sub.num_edges,
                "num_colors": res.num_colors,
                "iterations": res.iterations,
                "total_time_us": res.total_time_us,
            })
            ctx.evict(sub)  # the window's device buffers return to the pool
            del sub
            windows_done = widx + 1
            if ckpt is not None:
                ckpt.save(
                    windows_done, _ckpt_meta("windows"), {"colors": colors}
                )

        # -- boundary repair: windowed Jacobi, then a sequential sweep --
        from .sharded import _mex

        fallback = False
        losers_mask = np.zeros(graph.num_vertices, dtype=bool)
        while True:
            if control is not None:
                control.check("round")
            _storm(rounds, "repair", "round")
            losers_mask[:] = False
            conflicted = _mark_conflict_losers(graph, colors, bounds, losers_mask)
            if not conflicted:
                break
            losers = np.nonzero(losers_mask)[0]
            if rounds >= max_resolution_rounds:
                fallback = True
                for w in losers:
                    colors[w] = _mex(colors[graph.neighbors(w)])
                recolored += int(losers.size)
                break
            snapshot = colors.copy()
            for w in losers:
                colors[w] = _mex(snapshot[graph.neighbors(w)])
            recolored += int(losers.size)
            rounds += 1
            if ckpt is not None:
                ckpt.save(
                    num_win + rounds, _ckpt_meta("repair"), {"colors": colors}
                )

        if validate:
            losers_mask[:] = False
            remaining = _mark_conflict_losers(graph, colors, bounds, losers_mask)
            if remaining:
                raise AssertionError(
                    f"streamed coloring left {remaining} conflicted edges"
                )
            if graph.num_vertices and int(colors.min()) < 1:
                raise AssertionError("streamed coloring left uncolored vertices")
        if tracer is not None:
            tracer.event(
                "boundary-resolution", "resolve",
                rounds=rounds, recolored=recolored, fallback=int(fallback),
            )

        result = ColoringResult(
            colors=colors,
            scheme=f"streamed({method})x{num_win}",
            iterations=max_iterations + rounds,
            gpu_time_us=gpu_us,
            cpu_time_us=cpu_us,
            transfer_time_us=xfer_us,
            num_kernel_launches=launches,
        )
        result.extra["shard_stats"] = {
            "num_shards": num_win,
            "method": method,
            "mode": "stream",
            "shards": window_rows,
            "resolution_rounds": rounds,
            "recolored": recolored,
            "fallback": fallback,
            "peak_window_bytes": peak_window_bytes,
            # Uniform boundary-resolution keys (see color_distributed):
            # windows run in one address space, so rounds are global
            # synchronizations and no halo bytes move.
            "sync_rounds": rounds,
            "halo_bytes_modeled": 0,
            "speculation_hits": 0,
        }
        if observation.active:
            result.extra.setdefault("observation", observation)
        if robustness is not None:
            if ckpt is not None:
                robustness.annotate("checkpoint", ckpt.stats())
            if control is not None and control.deadline is not None:
                queued, running = control.elapsed_snapshot()
                robustness.annotate("deadline", {
                    "deadline_ms": control.deadline.deadline_ms,
                    "queued_ms": round(queued, 3),
                    "running_ms": round(running, 3),
                })
            result.extra["robustness"] = robustness.report()
        if run_span is not None:
            tracer.end(
                run_span,
                colors=result.num_colors,
                iterations=result.iterations,
                resolution_rounds=rounds,
            )
            run_span = None
        return result
    finally:
        if run_span is not None and tracer is not None:
            tracer.end(run_span)
