"""Content-addressed result cache for coloring runs.

A run is fully determined by (graph topology, scheme, resolved options,
device preset) — the simulation is deterministic — so repeated
benchmark/CI runs of identical jobs can skip the round loop entirely.
:func:`job_cache_key` hashes those four components (the graph through
:meth:`~repro.graph.csr.CSRGraph.content_digest`, the options resolved
against the typed scheme registry so ``{}`` and ``{"block_size": 128}``
share a key); :class:`ResultCache` stores results behind the key with an
in-memory LRU and an optional on-disk store that survives processes.

Wired into ``color_graph`` / ``color_many`` as ``cache=``:

=====================  ==================================================
``cache=None``         no caching (the default; byte-identical to before)
``cache="memory"``     fresh in-memory LRU (useful per long-lived script)
``cache="/some/dir"``  in-memory LRU backed by an on-disk store
``cache=ResultCache()``  your instance, shared/configured explicitly
=====================  ==================================================

Cached hits never re-enter the engine: no run span appears in an
attached trace — only a ``result-cache`` event — and the returned
result has ``cache_hit=True`` (see ``ColoringResult.to_dict``).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..coloring.base import COLOR_DTYPE, ColoringResult
from ..coloring.registry import ENGINE_KEYWORDS, SCHEMES
from ..faults.runtime import note_degradation

__all__ = [
    "ResultCache",
    "clone_result",
    "job_cache_key",
    "resolve_cache",
    "backend_fingerprint",
]

#: Backends whose *results* are byte-identical to another's by contract
#: (the golden equivalence suite gates this), mapped to the canonical
#: name: their runs share cache entries.  ``jit=`` picks a kernel tier,
#: never an outcome, so it is dropped from the fingerprint too.
_RESULT_IDENTICAL = {"compiled": "gpusim"}


def backend_fingerprint(spec, backend_opts: dict | None = None) -> str:
    """A stable string identifying the device preset a run executes on.

    ``None`` and ``"gpusim"`` share a fingerprint (both mean the default
    simulated K20c); backend *instances* contribute their device
    configuration so ablation presets don't collide.
    """
    if spec is None:
        spec = "gpusim"
    if isinstance(spec, str):
        opts = dict(backend_opts or {})
        if spec in _RESULT_IDENTICAL:
            spec = _RESULT_IDENTICAL[spec]
            opts.pop("jit", None)
        return f"{spec}:{json.dumps(opts, sort_keys=True, default=repr)}"
    # Instances: name plus whatever configuration identifies the preset.
    name = getattr(spec, "name", type(spec).__name__)
    name = _RESULT_IDENTICAL.get(name, name)
    device = getattr(spec, "device", spec)
    config = getattr(device, "config", None)
    cores = getattr(getattr(spec, "cpu", None), "cores", None)
    return f"{name}:{config!r}:cores={cores}"


def job_cache_key(graph, method: str, options: dict | None = None,
                  backend=None, backend_opts: dict | None = None) -> str:
    """The content address of one coloring job.

    ``options`` are resolved against the typed scheme registry before
    hashing (defaults applied, engine keywords dropped), so spelling a
    default explicitly does not fork the key.
    """
    options = {
        k: v for k, v in (options or {}).items() if k not in ENGINE_KEYWORDS
    }
    info = SCHEMES.get(method)
    if info is not None:
        resolved = {name: default for name, default, _ in info.option_rows()}
        resolved.update(options)
    else:
        resolved = dict(options)
    payload = json.dumps(
        {
            "graph": graph.content_digest(),
            "method": method,
            "options": {k: resolved[k] for k in sorted(resolved)},
            "backend": backend_fingerprint(backend, backend_opts),
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: ``extra`` keys never persisted into the cache (run-local handles).
_EPHEMERAL_EXTRA = ("observation", "cache_hit", "robustness")


def _strip_extra(extra: dict) -> dict:
    return {k: v for k, v in dict(extra).items() if k not in _EPHEMERAL_EXTRA}


def clone_result(result: ColoringResult, **extra_updates) -> ColoringResult:
    """An independent copy of ``result`` (fresh colors, stripped extras).

    Run-local handles (:data:`_EPHEMERAL_EXTRA`) are dropped and
    ``extra_updates`` merged in — the defensive-copy discipline the cache
    uses for hits, exposed for other sharers of one computed result (the
    service's request coalescing hands each follower a clone).
    """
    extra = _strip_extra(result.extra)
    extra.update(extra_updates)
    return ColoringResult(
        colors=result.colors.copy(),
        scheme=result.scheme,
        iterations=result.iterations,
        gpu_time_us=result.gpu_time_us,
        cpu_time_us=result.cpu_time_us,
        transfer_time_us=result.transfer_time_us,
        num_kernel_launches=result.num_kernel_launches,
        profiles=list(result.profiles),
        extra=extra,
    )


class ResultCache:
    """LRU result cache with an optional on-disk store.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity (least-recently-used eviction).
    directory:
        Optional on-disk store: one ``<key>.npz`` per entry (colors plus
        a JSON metadata sidecar inside the archive).  Disk entries are
        never evicted by this class; hits are promoted into the LRU.
        Non-JSON ``extra`` values are stringified on disk (best-effort
        metadata — the colors and counts round-trip exactly).

    A corrupt or truncated disk entry is never an exception and never a
    wrong-color hit: the load surfaces as a cache miss, the bad file is
    *quarantined* (renamed to ``<key>.npz.bad`` so it can't be re-read
    yet stays inspectable), and the next :meth:`put` rewrites the entry
    cleanly — the cache degradation chain (see docs/ROBUSTNESS.md).

    Counters ``hits`` / ``misses`` / ``evictions`` / ``stores`` /
    ``quarantined`` report effectiveness; :meth:`stats` snapshots them.
    """

    def __init__(self, max_entries: int = 128, directory=None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict[str, ColoringResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0
        self.quarantined = 0

    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> dict:
        return {
            "entries": len(self._memory),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "directory": str(self.directory) if self.directory else None,
        }

    # ------------------------------------------------------------------
    def get(self, key: str) -> ColoringResult | None:
        """The cached result for ``key`` (a fresh copy), or ``None``.

        The copy's ``extra`` carries ``cache_hit=True``; colors are
        copied so callers can't corrupt the cached entry.
        """
        entry = self._memory.get(key)
        if entry is None and self.directory is not None:
            entry = self._disk_get(key)
            if entry is not None:
                self._memory_put(key, entry)
        if entry is None:
            self.misses += 1
            return None
        self._memory.move_to_end(key)
        self.hits += 1
        return self._copy(entry, cache_hit=True)

    def put(self, key: str, result: ColoringResult) -> None:
        """Store ``result`` under ``key`` (memory, plus disk if configured)."""
        entry = self._copy(result)
        self._memory_put(key, entry)
        if self.directory is not None:
            self._disk_put(key, entry)
        self.stores += 1

    # ------------------------------------------------------------------
    def _copy(self, result: ColoringResult, *, cache_hit: bool = False) -> ColoringResult:
        if cache_hit:
            return clone_result(result, cache_hit=True)
        return clone_result(result)

    def _memory_put(self, key: str, entry: ColoringResult) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.evictions += 1

    # -- on-disk store ---------------------------------------------------
    def _disk_path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def _disk_put(self, key: str, entry: ColoringResult) -> None:
        meta = {
            "scheme": entry.scheme,
            "iterations": entry.iterations,
            "gpu_time_us": entry.gpu_time_us,
            "cpu_time_us": entry.cpu_time_us,
            "transfer_time_us": entry.transfer_time_us,
            "num_kernel_launches": entry.num_kernel_launches,
            "extra": json.loads(json.dumps(_strip_extra(entry.extra), default=str)),
        }
        path = self._disk_path(key)
        tmp = path.with_suffix(".tmp.npz")
        np.savez_compressed(tmp, colors=entry.colors,
                            meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8))
        tmp.replace(path)

    def _disk_get(self, key: str) -> ColoringResult | None:
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                colors = data["colors"].astype(COLOR_DTYPE)
                meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
            # Corrupt/truncated/foreign file: a miss, never an exception.
            self._quarantine(path, exc)
            return None
        return ColoringResult(
            colors=colors,
            scheme=meta["scheme"],
            iterations=int(meta["iterations"]),
            gpu_time_us=float(meta["gpu_time_us"]),
            cpu_time_us=float(meta["cpu_time_us"]),
            transfer_time_us=float(meta["transfer_time_us"]),
            num_kernel_launches=int(meta["num_kernel_launches"]),
            extra=dict(meta.get("extra", {})),
        )

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a bad disk entry aside so it can't be re-read.

        ``<key>.npz`` → ``<key>.npz.bad`` (overwriting any previous
        quarantine of the same key).  Failure to rename — e.g. a
        read-only store — still leaves the load a clean miss.
        """
        bad = path.with_name(path.name + ".bad")
        try:
            path.replace(bad)
        except OSError:
            return
        self.quarantined += 1
        note_degradation(
            "cache", "disk-hit", "miss", "corrupt-entry",
            f"{path.name}: {type(exc).__name__}: {exc}",
        )

    def corrupt_disk_entry(self, key: str) -> bool:
        """Overwrite ``key``'s disk entry with garbage bytes (chaos hook).

        The ``cache-corrupt`` injection site and the regression tests use
        this to prove corrupt entries degrade to quarantined misses.
        Returns whether an entry existed to corrupt; the in-memory copy
        is dropped too, so the next :meth:`get` must go to disk.
        """
        self._memory.pop(key, None)
        if self.directory is None:
            return False
        path = self._disk_path(key)
        if not path.exists():
            return False
        path.write_bytes(b"not an npz: injected corruption")
        return True


def resolve_cache(spec) -> ResultCache | None:
    """Normalize any accepted ``cache=`` value.

    ``None`` → no cache; ``"memory"`` → fresh in-memory LRU; a path
    string / ``Path`` → LRU backed by that directory; a
    :class:`ResultCache` → itself.
    """
    if spec is None:
        return None
    if isinstance(spec, ResultCache):
        return spec
    if isinstance(spec, (str, Path)):
        if spec == "memory":
            return ResultCache()
        return ResultCache(directory=spec)
    raise TypeError(
        f"cannot interpret {spec!r} as a result cache: expected None, "
        f"'memory', a directory path, or a ResultCache"
    )
