"""Partition-sharded coloring for graphs too big for one device.

The multi-device execution model, simulated: split the vertex set into
contiguous shards (:func:`repro.graph.partition.block_partition`), color
each shard's *induced subgraph* as an independent job — concurrently,
through the same scheduler ``color_many`` uses — then repair the edges
the shards could not see.  Cross-shard edges may join same-colored
vertices (each shard colored blind to the others), so a Jacobi-style
boundary-resolution phase follows: each round, the higher-id endpoint of
every conflicted edge recolors itself to the smallest color missing from
a snapshot of its neighborhood.  Rounds repeat until no conflicts
remain; a capped round count falls back to one sequential sweep (recolor
conflicted vertices in id order with live reads), which terminates with
a proper coloring by construction — recoloring a vertex away from *all*
its neighbors never creates a new conflict elsewhere.

This is the same speculate-then-resolve shape as the paper's Alg. 4 and
Grosset's 3-step framework, lifted from thread-blocks-within-a-device to
shards-across-devices.  Timing follows the makespan model: shards run
concurrently on replica devices, so the result's device/transfer times
are the *maximum* over shards, not the sum (the host-side resolution
sweep is functional and unpriced, like the other host repairs).

Statistics land in ``result.shard_stats`` (per-shard vertex/edge/color
counts and times, boundary size, resolution rounds, recolor count) and —
when a tracer is attached — as per-shard ``worker`` spans plus a
``boundary-resolution`` event inside the ``sharded`` run span.
"""

from __future__ import annotations

import numpy as np

from ..coloring.base import COLOR_DTYPE, ColoringResult, count_conflicts
from ..faults import Robustness, resolve_robustness
from ..graph.partition import block_partition, boundary_vertices
from ..obs.observe import resolve_observe
from .jobs import ColorJob, JobFailure
from .scheduler import run_jobs

__all__ = ["ShardedColoringError", "color_sharded"]


class ShardedColoringError(RuntimeError):
    """A shard job failed after retries; carries the failures."""

    def __init__(self, failures: list[JobFailure]) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"shard {f.index} ({f.method} on {f.graph}): {f.error}"
            for f in self.failures
        )
        super().__init__(f"{len(self.failures)} shard job(s) failed: {detail}")


def _degrade_to_unsharded(
    graph, method, options, failures, robustness, *,
    backend, backend_opts, observation, validate, num_shards,
) -> ColoringResult:
    """The sharded → sequential degradation chain.

    When shard jobs keep failing (even through the scheduler's own
    pool → serial chain), color the *whole* graph as one sequential,
    fault-free job.  The result matches an unsharded ``color_graph`` run
    byte-for-byte — not a sharded run, which partitions differently —
    and its ``shard_stats`` records the degradation.
    """
    robustness.degrade(
        "sharded", f"sharded(x{num_shards})", "unsharded", "shard-failures",
        f"failed_shards={[f.index for f in failures]}",
    )
    healer = Robustness(
        injector=None, policy=robustness.policy, log=robustness.log
    )
    outcome = run_jobs(
        [ColorJob(graph, method, dict(options))],
        scheduler="serial", backend=backend, backend_opts=backend_opts,
        observe=observation if observation.active else None,
        validate=validate, faults=healer,
    )[0]
    if isinstance(outcome, JobFailure):
        raise ShardedColoringError(list(failures) + [outcome])
    outcome.extra["shard_stats"] = {
        "num_shards": num_shards,
        "method": method,
        "shards": [],
        "degraded": "unsharded",
        "failed_shards": [f.index for f in failures],
        "sync_rounds": 0,
        "halo_bytes_modeled": 0,
        "speculation_hits": 0,
    }
    if observation.active:
        outcome.extra.setdefault("observation", observation)
    return outcome


def _mex(neighbor_colors: np.ndarray) -> int:
    """Smallest positive color absent from ``neighbor_colors``."""
    used = np.unique(neighbor_colors[neighbor_colors > 0])
    color = 1
    for c in used:
        if c == color:
            color += 1
        elif c > color:
            break
    return color


def color_sharded(
    graph,
    method: str = "data-ldg",
    *,
    num_shards: int = 4,
    workers=None,
    scheduler=None,
    backend=None,
    backend_opts=None,
    config=None,
    observe=None,
    validate: bool = True,
    max_resolution_rounds: int = 16,
    faults=None,
    health=None,
    store=None,
    stream: bool = False,
    memory_budget_mb: float | None = None,
    deadline_ms=None,
    checkpoint=None,
    checkpoint_every: int = 1,
    resume=None,
    **options,
) -> ColoringResult:
    """Color ``graph`` in ``num_shards`` independent pieces, then repair.

    Parameters
    ----------
    num_shards:
        Contiguous vertex blocks to split into (capped at the vertex
        count).  Each block's induced subgraph is one coloring job.
    workers / scheduler / backend / backend_opts:
        Forwarded to the job scheduler — ``workers=N`` colors shards in
        ``N`` worker processes, exactly like ``color_many``.
    observe:
        The unified observation surface; with a tracer attached the
        whole run nests under one ``sharded`` span (per-shard subtraces
        included).
    max_resolution_rounds:
        Jacobi round cap before the sequential fallback sweep.
    faults / health:
        The robustness layer (see :mod:`repro.faults`), forwarded to the
        shard jobs.  With a degradation-permitting policy, persistent
        shard-job failures degrade the whole run to one *unsharded*
        sequential coloring (colors then match ``color_graph`` on the
        full graph, not a sharded run) instead of raising; hitting the
        Jacobi round cap is likewise recorded as a ``sharded``
        degradation event.
    store:
        Graph arena for shipping shard subgraphs to workers (see
        :mod:`repro.graph.store`): ``'shm'``/``'mmap'`` publish each
        shard once and send workers zero-copy handles; default pickles.
    stream / memory_budget_mb:
        The bounded-memory path (see
        :func:`~repro.parallel.streaming.color_streamed`): windows run
        *sequentially* through one shared context instead of as
        concurrent jobs, so peak RSS stays ``O(n + window)`` and graphs
        bigger than RAM complete from an mmap-backed store.
        ``stream=True`` cuts ``num_shards`` windows (colors are
        byte-identical to the non-streamed sharded run on the same
        ``num_shards``); ``memory_budget_mb`` sizes the window count
        from the budget instead and implies streaming.  ``workers`` /
        ``scheduler`` / ``store`` are ignored while streaming.
    deadline_ms:
        End-to-end budget (or a ready
        :class:`~repro.resilience.RunControl`): shard jobs check it at
        dispatch and every round boundary (the remaining budget ships
        into worker processes), the boundary-resolution loop checks it
        per Jacobi round, and overruns raise the structured
        :class:`~repro.resilience.DeadlineExceeded`.
    checkpoint / checkpoint_every / resume:
        Streamed runs only (forwarded to
        :func:`~repro.parallel.streaming.color_streamed`): periodic
        atomic round-state checkpoints and byte-identical resume.  The
        concurrent sharded path recomputes from scratch by design —
        pass ``stream=True`` (or use ``color_distributed``) to
        checkpoint.
    **options:
        Scheme options, forwarded to every shard job.

    Returns
    -------
    ColoringResult
        A checker-valid coloring of the full graph; ``shard_stats``
        holds the per-shard and boundary-resolution statistics.

    Raises
    ------
    ShardedColoringError
        When any shard job fails after the scheduler's retries.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if config is not None:
        from ..engine.config import normalize_config

        merged = normalize_config(
            "color_sharded",
            config,
            {
                "backend": backend, "backend_opts": backend_opts,
                "store": store, "workers": workers, "scheduler": scheduler,
                "faults": faults, "health": health, "observe": observe,
                "deadline_ms": deadline_ms,
            },
        )
        backend, backend_opts = merged["backend"], merged["backend_opts"]
        store, workers = merged["store"], merged["workers"]
        scheduler = merged["scheduler"]
        faults, health = merged["faults"], merged["health"]
        observe = merged["observe"]
        deadline_ms = merged["deadline_ms"]
    from ..coloring.api import METHODS
    from ..coloring.registry import resolve_method

    method = resolve_method(method, METHODS, entry_point="color_sharded")
    if stream or memory_budget_mb is not None:
        from .streaming import color_streamed

        return color_streamed(
            graph, method,
            num_windows=None if memory_budget_mb is not None else num_shards,
            memory_budget_mb=memory_budget_mb,
            backend=backend, backend_opts=backend_opts,
            observe=observe, validate=validate,
            max_resolution_rounds=max_resolution_rounds,
            faults=faults, health=health,
            deadline_ms=deadline_ms, checkpoint=checkpoint,
            checkpoint_every=checkpoint_every, resume=resume,
            **options,
        )
    if checkpoint is not None or resume is not None:
        raise ValueError(
            "checkpoint=/resume= apply to streamed runs: pass stream=True "
            "(or memory_budget_mb=), or use color_distributed — the "
            "concurrent sharded path holds no resumable round state"
        )
    from ..resilience.deadline import resolve_control

    control = resolve_control(deadline_ms)
    observation = resolve_observe(observe)
    tracer = observation.tracer
    robustness = resolve_robustness(faults, health)
    if robustness is not None and robustness.log.tracer is None:
        robustness.log.tracer = tracer
    name = getattr(graph, "name", "?")

    partition = block_partition(graph, num_shards)
    num_shards = partition.num_parts
    boundary = boundary_vertices(graph, partition)

    run_span = None
    if tracer is not None:
        run_span = tracer.begin(
            f"sharded:{name}", "run",
            scheme=f"sharded({method})", graph=name,
            vertices=graph.num_vertices, edges=graph.num_edges,
            shards=num_shards, boundary_vertices=int(boundary.sum()),
        )
    try:
        # -- 1. shard coloring (concurrent jobs through the scheduler) --
        members: list[np.ndarray] = []
        jobs: list[ColorJob] = []
        job_shard: list[int] = []  # shard id per job (empty shards skipped)
        for p in range(num_shards):
            mask = partition.assignment == p
            verts = np.nonzero(mask)[0]
            members.append(verts)
            if verts.size == 0:
                continue
            jobs.append(ColorJob(graph.subgraph_mask(mask), method, dict(options)))
            job_shard.append(p)
        outcomes = run_jobs(
            jobs, workers=workers, scheduler=scheduler,
            backend=backend, backend_opts=backend_opts,
            observe=observation if observation.active else None,
            validate=validate, faults=robustness, store=store,
            deadline_ms=control,
        )
        failures = [o for o in outcomes if isinstance(o, JobFailure)]
        if failures:
            if robustness is None or not robustness.policy.degrade:
                raise ShardedColoringError(failures)
            result = _degrade_to_unsharded(
                graph, method, options, failures, robustness,
                backend=backend, backend_opts=backend_opts,
                observation=observation, validate=validate,
                num_shards=num_shards,
            )
            result.extra["robustness"] = robustness.report()
            if run_span is not None:
                tracer.end(run_span, colors=result.num_colors, degraded=1)
                run_span = None
            return result

        colors = np.zeros(graph.num_vertices, dtype=COLOR_DTYPE)
        shard_rows = []
        for job, shard, res in zip(jobs, job_shard, outcomes):
            colors[members[shard]] = res.colors
            shard_rows.append({
                "shard": shard,
                "vertices": job.graph.num_vertices,
                "edges": job.graph.num_edges,
                "num_colors": res.num_colors,
                "iterations": res.iterations,
                "total_time_us": res.total_time_us,
            })

        # -- 2. boundary-conflict resolution (Jacobi, then fallback) ----
        u, v = graph.edge_endpoints()
        rounds = 0
        recolored = 0
        fallback = False
        while True:
            if control is not None:
                control.check("round")
            conflicted = colors[u] == colors[v]
            if not conflicted.any():
                break
            if rounds >= max_resolution_rounds:
                # Sequential sweep: live reads, id order — terminates.
                fallback = True
                if robustness is not None:
                    robustness.degrade(
                        "sharded", "jacobi", "sequential-sweep", "round-cap",
                        f"rounds={rounds} "
                        f"conflicted_edges={int(conflicted.sum())}",
                    )
                losers = np.unique(np.maximum(u[conflicted], v[conflicted]))
                for w in losers:
                    colors[w] = _mex(colors[graph.neighbors(w)])
                recolored += int(losers.size)
                break
            losers = np.unique(np.maximum(u[conflicted], v[conflicted]))
            snapshot = colors.copy()
            for w in losers:
                colors[w] = _mex(snapshot[graph.neighbors(w)])
            recolored += int(losers.size)
            rounds += 1
        if tracer is not None:
            tracer.event(
                "boundary-resolution", "resolve",
                rounds=rounds, recolored=recolored,
                fallback=int(fallback),
                remaining_conflicts=count_conflicts(graph, colors),
            )

        # -- 3. assemble the makespan-model result ----------------------
        result = ColoringResult(
            colors=colors,
            scheme=f"sharded({method})x{num_shards}",
            iterations=max((r.iterations for r in outcomes), default=0) + rounds,
            gpu_time_us=max((r.gpu_time_us for r in outcomes), default=0.0),
            cpu_time_us=max((r.cpu_time_us for r in outcomes), default=0.0),
            transfer_time_us=max(
                (r.transfer_time_us for r in outcomes), default=0.0
            ),
            num_kernel_launches=sum(r.num_kernel_launches for r in outcomes),
        )
        result.extra["shard_stats"] = {
            "num_shards": num_shards,
            "method": method,
            "shards": shard_rows,
            "boundary_vertices": int(boundary.sum()),
            "resolution_rounds": rounds,
            "recolored": recolored,
            "fallback": fallback,
            # Uniform boundary-resolution keys (see color_distributed):
            # one address space means every Jacobi round is one global
            # synchronization and no halo bytes ever move.
            "sync_rounds": rounds,
            "halo_bytes_modeled": 0,
            "speculation_hits": 0,
        }
        if observation.active:
            result.extra.setdefault("observation", observation)
        if robustness is not None:
            result.extra["robustness"] = robustness.report()
        if run_span is not None:
            tracer.end(
                run_span,
                colors=result.num_colors,
                iterations=result.iterations,
                resolution_rounds=rounds,
            )
            run_span = None
        if validate:
            result.validate(graph)
        return result
    finally:
        if run_span is not None and tracer is not None:
            tracer.end(run_span)
