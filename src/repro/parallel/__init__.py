"""repro.parallel: the parallel execution layer.

Three independent scaling pieces on top of the engine, per the two axes
of Rokos et al. and Bogle & Slota:

* :mod:`~repro.parallel.scheduler` — shard a batch of (graph, scheme)
  jobs across worker processes (``color_many(..., workers=N)``); each
  worker owns its own :class:`~repro.engine.context.ExecutionContext`,
  results come back in submission order, and crashed/timed-out jobs are
  retried with backoff then surfaced as structured :class:`JobFailure`
  entries instead of killing the batch.
* :mod:`~repro.parallel.sharded` — partition-sharded coloring of one
  huge graph (:func:`color_sharded`): split the vertex set, color the
  partitions concurrently, then run boundary-conflict resolution rounds
  — the multi-device execution model, simulated.
* :mod:`~repro.parallel.cache` — a content-addressed result cache
  (:class:`ResultCache`), keyed by CSR digest + scheme + resolved
  options + device preset, wired into ``color_graph``/``color_many`` as
  ``cache=``.
* :mod:`~repro.parallel.streaming` — out-of-core coloring
  (:func:`color_streamed`): cut contiguous windows out of an
  (mmap-backed) graph and run them through one context sequentially
  with bounded peak RSS, for graphs bigger than RAM.

The ``store=`` option threads the zero-copy graph arenas
(:mod:`repro.graph.store`) through the scheduler: workers attach
shared-memory or mmap arenas instead of unpickling private copies.

See docs/PARALLEL.md for the scheduler model, determinism guarantees
and cache keying, and docs/STORAGE.md for the arena layer.
"""

from .cache import ResultCache, clone_result, job_cache_key, resolve_cache
from .jobs import ColorJob, JobFailure, normalize_jobs
from .scheduler import (
    BACKOFF_CAP_S,
    ProcessPoolScheduler,
    SerialScheduler,
    backoff_delay,
    resolve_scheduler,
    run_jobs,
)
from .sharded import ShardedColoringError, color_sharded
from .streaming import color_streamed, plan_windows, window_subgraph

__all__ = [
    "BACKOFF_CAP_S",
    "ColorJob",
    "JobFailure",
    "ProcessPoolScheduler",
    "ResultCache",
    "SerialScheduler",
    "ShardedColoringError",
    "backoff_delay",
    "clone_result",
    "color_sharded",
    "color_streamed",
    "job_cache_key",
    "normalize_jobs",
    "plan_windows",
    "resolve_cache",
    "resolve_scheduler",
    "run_jobs",
    "window_subgraph",
]
