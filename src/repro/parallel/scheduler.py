"""Batch schedulers: shard (graph, scheme) jobs across worker processes.

The simulation is CPU-bound pure Python, so independent jobs scale
across *processes* (the GIL rules out threads).  Two schedulers share
one contract:

* :class:`SerialScheduler` — in-process, one job at a time; the
  fallback and the reference the process pool must match byte-for-byte.
* :class:`ProcessPoolScheduler` — a ``concurrent.futures`` process
  pool.  Each worker process lazily builds its **own**
  :class:`~repro.engine.context.ExecutionContext` and canonicalizes
  unpickled graphs by content digest, so upload caching still amortizes
  when a worker sees the same graph twice.  Results stream back in
  submission order; a job that raises, crashes its worker, or exceeds
  ``timeout_s`` is retried with jittered exponential backoff and, once
  attempts are exhausted, surfaced as a structured
  :class:`~repro.parallel.jobs.JobFailure` instead of killing the batch.

Timeouts and hung workers: the first timeout aborts the collection
round — still-queued futures are cancelled and their attempts refunded
(they were starved, not faulty), already-finished ones are harvested —
and the pool is *recycled*: leftover hung worker processes are
terminated so they can't occupy slots of the next round.  Waiting is
therefore bounded by ``workers × timeout_s`` per round, not
``jobs × timeout_s``.

Retry backoff: :func:`backoff_delay` — exponential from ``backoff_s``,
capped at :data:`BACKOFF_CAP_S`, with deterministic bounded jitter in
``[0.5×, 1.0×]`` so simultaneous batches don't resubmit in lockstep.

Fault injection (see :mod:`repro.faults`): ``execute(robustness=...)``
threads a bundle through the batch.  The coordinator decides the
``worker-crash`` / ``worker-hang`` sites at submit time (so their
records survive the dead worker) and ships the plan + policy to workers,
which consult the ``job-error`` site and the engine-level sites; worker
fault/degradation reports are absorbed back into the coordinator bundle
in submission order.  The serial scheduler is deliberately immune to
``worker-crash`` / ``worker-hang`` — it is the healing fallback of the
pool → serial degradation chain.

Determinism: the simulated device is deterministic, so colors and
iteration counts are byte-identical across schedulers and worker
counts.  Simulated *timings* of a job can differ from a shared-context
serial run (each worker's device starts with cold caches); see
docs/PARALLEL.md.

:func:`run_jobs` is the orchestrator ``color_many`` calls: result-cache
lookups happen in the coordinator (hits never reach a worker), per-job
worker subtraces merge into the batch tracer, per-round records replay
into the batch recorder, and failed jobs degrade to a serial re-run
when the batch's health policy allows it.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

from ..faults import (
    FaultInjected,
    FaultInjector,
    Robustness,
    resolve_robustness,
)
from ..faults import runtime as _fault_runtime
from ..obs.observe import resolve_observe
from ..resilience.breaker import BACKOFF_CAP_S, RetryPolicy
from ..resilience.deadline import (
    Cancelled,
    DeadlineExceeded,
    RunControl,
    activate_control,
    resolve_control,
)
from .cache import job_cache_key, resolve_cache
from .jobs import ColorJob, JobFailure

__all__ = [
    "BACKOFF_CAP_S",
    "backoff_delay",
    "SerialScheduler",
    "ProcessPoolScheduler",
    "resolve_scheduler",
    "run_jobs",
]

#: Simulated-wall-clock a ``worker-hang`` fault sleeps when its spec has
#: no ``param`` (long enough to trip any sane ``timeout_s``).
_DEFAULT_HANG_S = 3600.0


def backoff_delay(base: float, round_index: int, *,
                  cap: float = BACKOFF_CAP_S, seed=None) -> float:
    """Jittered exponential backoff for retry round ``round_index``.

    Thin wrapper over :meth:`repro.resilience.RetryPolicy.delay` — the
    formula (``base * 2**round_index`` capped at ``cap``, jitter in
    ``[0.5, 1.0]`` from SHA-256 of ``(seed, round_index)``) now lives
    there so the scheduler and the distributed transport share one
    policy object.  ``seed=None`` uses the process id; pass an int for
    reproducible delays in tests.
    """
    return RetryPolicy(
        retries=0, backoff_s=base, cap_s=cap, jitter_seed=seed
    ).delay(round_index)


# ---------------------------------------------------------------------------
# The shared per-job runner (used in-process by SerialScheduler and inside
# worker processes by ProcessPoolScheduler).
# ---------------------------------------------------------------------------
def _run_one(ctx_map: dict, job: ColorJob, backend, backend_opts: dict,
             validate: bool, want_trace: bool, want_rounds: bool,
             robustness=None, control=None):
    """Execute one job; returns ``(result, trace_roots, round_records)``.

    Untraced device jobs share the ``ctx_map`` ExecutionContext (upload
    caching, pooled buffers); observed jobs get an ephemeral context with
    a job-local tracer/recorder whose contents the coordinator merges.
    ``robustness`` (if any) is scoped onto the context for the run, so
    the engine-level injection sites and guard rails see it.
    """
    from contextlib import nullcontext

    from ..coloring.api import ENGINE_RECIPES, color_graph
    from ..engine.context import ExecutionContext
    from ..faults import runtime as fault_runtime
    from ..metrics.recorder import Recorder
    from ..obs.observe import Observation
    from ..obs.tracer import Tracer

    tracer = Tracer() if want_trace else None
    recorder = Recorder() if want_rounds else None
    observed = tracer is not None or recorder is not None
    if job.method in ENGINE_RECIPES:
        if observed:
            ctx = ExecutionContext(
                backend=backend,
                observe=Observation(tracer=tracer, recorder=recorder),
                **dict(backend_opts or {}),
            )
        else:
            ctx = ctx_map.get("ctx")
            if ctx is None:
                ctx = ctx_map["ctx"] = ExecutionContext(
                    backend=backend, **dict(backend_opts or {})
                )
        scope = (
            ctx.robustness_scope(robustness)
            if robustness is not None
            else nullcontext()
        )
        cscope = (
            ctx.control_scope(control)
            if control is not None
            else nullcontext()
        )
        with scope, cscope:
            result = ctx.run(
                job.graph, job.method, validate=validate, **job.options
            )
    else:
        # Host-side schemes take no backend; in a batch the backend applies
        # to the device jobs only.
        observe = Observation(tracer=tracer, recorder=recorder) if observed else None
        with fault_runtime.activate(robustness), activate_control(control):
            result = color_graph(
                job.graph, job.method, validate=validate, observe=observe,
                **job.options
            )
    # The coordinator attaches its own observation handle.
    result.extra.pop("observation", None)
    return (
        result,
        tracer.roots if tracer is not None else None,
        recorder.rounds if recorder is not None else None,
    )


# ---------------------------------------------------------------------------
# Worker-process side of the process pool.
# ---------------------------------------------------------------------------
#: Per-worker-process state: the backend spec (from the initializer), the
#: lazily built ExecutionContext, and two bounded graph caches keyed by
#: content digest so repeat jobs on one graph hit the context's upload
#: cache without retaining every graph the worker ever saw.
_WORKER_STATE: dict = {}

#: Cap on *pickled heap* graphs a worker retains across jobs.  These are
#: full private copies of the topology, so the cap bounds worker RSS at
#: ``cap × largest-graph`` instead of ``jobs × graph`` (the old dict grew
#: forever).
_HEAP_GRAPH_CACHE = 8

#: Cap on *handle-attached* graphs (shm/mmap arenas).  Attached graphs
#: bypass the heap cache entirely — their arrays are zero-copy views, so
#: the entries cost only the arena mapping — but the cap still bounds
#: open segment/file handles, and keeps object identity stable across
#: jobs so the ExecutionContext upload cache keeps hitting.
_ATTACHED_GRAPH_CACHE = 8


class _GraphLRU:
    """Tiny digest-keyed LRU; eviction drops the engine's cached buffers.

    ``get_or_add`` returns the retained graph for ``key`` (refreshing
    recency) or admits ``factory()``.  Evicted graphs are first evicted
    from the shared ExecutionContext (``ctx.evict`` returns their device
    buffers to the pool) and then simply dropped — for attached graphs
    the arena mapping is released when the last view is collected.
    """

    def __init__(self, capacity: int) -> None:
        from collections import OrderedDict

        self.capacity = max(1, int(capacity))
        self._entries: "OrderedDict[str, object]" = OrderedDict()

    def get_or_add(self, key: str, factory, ctx_map: dict):
        graph = self._entries.get(key)
        if graph is not None:
            self._entries.move_to_end(key)
            return graph
        graph = factory()
        self._entries[key] = graph
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            ctx = ctx_map.get("ctx")
            if ctx is not None:
                ctx.evict(evicted)
        return graph

    def __len__(self) -> int:
        return len(self._entries)


def _worker_init(backend, backend_opts: dict) -> None:
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        backend=backend, backend_opts=dict(backend_opts or {}),
        ctx_map={},
        graphs=_GraphLRU(_HEAP_GRAPH_CACHE),
        attached=_GraphLRU(_ATTACHED_GRAPH_CACHE),
    )
    if getattr(backend, "name", backend) == "compiled":
        # Pay the one-time JIT load/compile during pool spin-up instead
        # of inside the first job; the disk-cached build makes this a
        # few ms for every worker after the first ever.
        try:
            from .. import compiledsim

            compiledsim.warmup()
        except Exception:
            pass  # tier probing degrades on its own; jobs still run


def _resolve_job_graph(job: ColorJob):
    """The worker-side graph for ``job``: attach by handle, or retain.

    Handle-bearing jobs arrive without topology (``graph=None``) and
    attach zero-copy from the arena; heap jobs arrive with a pickled
    private copy that the bounded LRU retains for digest-identical
    repeats.  Either way the digest memo traveled with the job, so no
    multi-gigabyte array is ever re-hashed here.
    """
    ctx_map = _WORKER_STATE["ctx_map"]
    if job.graph is None:
        if job.handle is None:
            raise ValueError("job crossed the pool with neither graph nor handle")
        return _WORKER_STATE["attached"].get_or_add(
            job.handle.digest, job.handle.attach, ctx_map
        )
    return _WORKER_STATE["graphs"].get_or_add(
        job.graph.content_digest(), lambda: job.graph, ctx_map
    )


def _worker_run(payload):
    """Run one job in a worker.  Payload:
    ``(index, job, validate, want_trace, want_rounds, attempt, plan,
    policy, directive, budget)`` — attempt through directive are the
    fault-injection leg, ``budget`` the shipped deadline snapshot
    (``None``-heavy in normal operation).  Returns ``("ok", index,
    result, roots, rounds, report)``, ``("deadline", index, payload,
    report)`` for a budget expiry (never retried), or ``("err", index,
    error, tb, report)`` where ``report`` carries the worker-side
    fired-fault and degradation records for the coordinator to absorb.
    """
    (index, job, validate, want_trace, want_rounds,
     attempt, plan, policy, directive, budget) = payload
    rb = None
    if plan is not None or policy is not None:
        rb = Robustness(
            injector=FaultInjector(plan) if plan is not None else None,
            policy=policy,
        )
    control = RunControl.from_shipped(budget)
    try:
        if directive == "crash":
            os._exit(1)  # simulated worker death: no cleanup, no goodbye
        elif isinstance(directive, tuple) and directive[0] == "hang":
            time.sleep(directive[1])
        if control is not None:
            control.check("job-start")
        if rb is not None:
            spec = rb.fire("job-error", job=index, attempt=attempt)
            if spec is not None:
                raise FaultInjected(
                    f"injected transient job error (job={index}, "
                    f"attempt={attempt})"
                )
        graph = _resolve_job_graph(job)
        canonical = ColorJob(graph, job.method, job.options)
        result, roots, rounds = _run_one(
            _WORKER_STATE["ctx_map"], canonical,
            _WORKER_STATE["backend"], _WORKER_STATE["backend_opts"],
            validate, want_trace, want_rounds, robustness=rb,
            control=control,
        )
        return ("ok", index, result, roots, rounds, _worker_report(rb))
    except (DeadlineExceeded, Cancelled) as exc:
        # A blown budget is final — retrying cannot un-spend time.
        return ("deadline", index, exc.to_dict(), _worker_report(rb))
    except Exception as exc:  # surfaced as a structured per-job error
        return ("err", index, repr(exc), traceback.format_exc(),
                _worker_report(rb))


def _worker_report(rb):
    if rb is None:
        return None
    return {
        "fired": rb.injector.report() if rb.injector is not None else [],
        "degradations": rb.log.report(),
    }


def _absorb_worker_report(robustness, report) -> None:
    """Fold a worker's fault/degradation records into the batch bundle."""
    if robustness is None or report is None:
        return
    if robustness.injector is not None and report["fired"]:
        robustness.injector.absorb(report["fired"])
    if report["degradations"]:
        robustness.log.absorb(report["degradations"])


# ---------------------------------------------------------------------------
# Schedulers.
# ---------------------------------------------------------------------------
class SerialScheduler:
    """Run jobs one at a time in this process (the reference order).

    Also the healing end of the pool → serial degradation chain, so it
    deliberately ignores the ``worker-crash`` / ``worker-hang`` sites
    (there is no worker process to kill); ``job-error`` and the
    engine-level sites fire normally.
    """

    name = "serial"

    def __init__(self, *, retries: int = 0, backoff_s: float = 0.0,
                 jitter_seed=None) -> None:
        self.retry = RetryPolicy(retries=retries, backoff_s=backoff_s,
                                 jitter_seed=jitter_seed)
        self.retries = self.retry.retries
        self.backoff_s = self.retry.backoff_s
        self.jitter_seed = jitter_seed

    def execute(self, jobs, *, backend=None, backend_opts=None, validate=True,
                want_trace=False, want_rounds=False, robustness=None,
                control=None):
        ctx_map: dict = {}
        outcomes = []
        for i, job in enumerate(jobs):
            if control is not None:
                control.check("dispatch")
            attempt = 0
            while True:
                attempt += 1
                try:
                    if robustness is not None:
                        spec = robustness.fire("job-error", job=i, attempt=attempt)
                        if spec is not None:
                            raise FaultInjected(
                                f"injected transient job error (job={i}, "
                                f"attempt={attempt})"
                            )
                    outcomes.append(_run_one(
                        ctx_map, job, backend, backend_opts or {},
                        validate, want_trace, want_rounds,
                        robustness=robustness, control=control,
                    ))
                    break
                except (DeadlineExceeded, Cancelled):
                    raise  # a blown budget is final; retries cannot help
                except Exception as exc:
                    if attempt > self.retries:
                        outcomes.append(JobFailure(
                            index=i, graph=job.graph_name(),
                            method=job.method, attempts=attempt,
                            error=repr(exc), traceback=traceback.format_exc(),
                        ))
                        break
                    time.sleep(self.retry.delay(attempt - 1))
        return outcomes


class ProcessPoolScheduler:
    """Shard jobs across a pool of worker processes.

    Parameters
    ----------
    workers:
        Pool size (default: the machine's CPU count).
    retries:
        Extra attempts per failed job (default 2 → up to 3 attempts).
    backoff_s:
        Base sleep between retry rounds; grows exponentially per round
        with bounded jitter, capped at :data:`BACKOFF_CAP_S` (see
        :func:`backoff_delay`).
    timeout_s:
        Per-job wait budget; a job exceeding it is failed, still-queued
        futures are cancelled with their attempts refunded, and the pool
        is recycled — hung worker processes terminated — so retry rounds
        start with every slot free.  ``None`` waits forever.
    mp_context:
        A ``multiprocessing`` context, e.g. ``get_context("spawn")``;
        default is the platform default (fork on Linux — cheap).
    jitter_seed:
        Backoff jitter seed (default: per-process); pin in tests for
        reproducible delays.
    """

    name = "process"

    def __init__(self, workers: int | None = None, *, retries: int = 2,
                 backoff_s: float = 0.05, timeout_s: float | None = None,
                 mp_context=None, jitter_seed=None) -> None:
        self.workers = max(1, int(workers) if workers else (os.cpu_count() or 1))
        self.retry = RetryPolicy(retries=retries, backoff_s=backoff_s,
                                 jitter_seed=jitter_seed)
        self.retries = self.retry.retries
        self.backoff_s = self.retry.backoff_s
        self.timeout_s = timeout_s
        self.mp_context = mp_context
        self.jitter_seed = jitter_seed
        self.pools_recycled = 0  # observability: how often a pool was rebuilt

    def _new_pool(self, backend, backend_opts):
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self.mp_context,
            initializer=_worker_init,
            initargs=(backend, dict(backend_opts or {})),
        )

    def _recycle(self, pool, *, kill: bool) -> None:
        """Retire a pool; with ``kill``, terminate its (hung) workers.

        ``shutdown(wait=False)`` alone would *leak* a hung worker — the
        process survives shutdown and keeps its CPU/memory forever — so
        the timeout path terminates every worker still alive and reaps
        it.  Dead pools (``kill=False``) join instantly.
        """
        procs = list(getattr(pool, "_processes", {}).values()) if kill else []
        pool.shutdown(wait=not kill, cancel_futures=True)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5)
        self.pools_recycled += 1

    def _directive(self, robustness, index: int, attempt: int):
        """Coordinator-side crash/hang decision for one submission.

        Decided here (not in the worker) so the fired-fault record
        survives the worker's death and the decision shares the batch
        injector's fire budgets.
        """
        if robustness is None:
            return None
        spec = robustness.fire("worker-crash", job=index, attempt=attempt)
        if spec is not None:
            return "crash"
        spec = robustness.fire("worker-hang", job=index, attempt=attempt)
        if spec is not None:
            return ("hang", float(spec.param) if spec.param else _DEFAULT_HANG_S)
        return None

    def execute(self, jobs, *, backend=None, backend_opts=None, validate=True,
                want_trace=False, want_rounds=False, robustness=None,
                control=None):
        if backend is not None and not isinstance(backend, str):
            raise TypeError(
                "the process scheduler needs a picklable backend spec: pass "
                "a backend *name* ('gpusim'/'cpusim') plus options, not an "
                "instance (each worker builds its own)"
            )
        plan = robustness.plan if robustness is not None else None
        policy = robustness.policy if robustness is not None else None
        outcomes: list = [None] * len(jobs)
        attempts = [0] * len(jobs)
        last_error = [("", "")] * len(jobs)
        pending = list(range(len(jobs)))
        pool = None
        retry_round = 0
        deadline_hit: dict | None = None
        try:
            while pending:
                if control is not None:
                    control.check("dispatch")
                if pool is None:
                    pool = self._new_pool(backend, backend_opts)
                futures = []
                for i in pending:
                    attempts[i] += 1
                    directive = self._directive(robustness, i, attempts[i])
                    budget = control.ship() if control is not None else None
                    payload = (i, jobs[i], validate, want_trace, want_rounds,
                               attempts[i], plan, policy, directive, budget)
                    futures.append((i, pool.submit(_worker_run, payload)))
                failed, refunded = [], []
                rebuild, broken, timed_out = False, False, False
                for i, fut in futures:  # submission order == streaming order
                    if broken:
                        last_error[i] = ("BrokenProcessPool: worker process died", "")
                        failed.append(i)
                        continue
                    if timed_out and fut.cancel():
                        # Still queued behind a hung worker: starved, not
                        # faulty.  Refund the attempt and resubmit.
                        attempts[i] = max(0, attempts[i] - 1)
                        refunded.append(i)
                        continue
                    try:
                        out = fut.result(timeout=self.timeout_s)
                    except FutureTimeoutError:
                        last_error[i] = (
                            f"TimeoutError: no result within {self.timeout_s}s", "")
                        failed.append(i)
                        rebuild = timed_out = True  # a hung worker occupies its slot
                        continue
                    except BrokenProcessPool:
                        last_error[i] = ("BrokenProcessPool: worker process died", "")
                        failed.append(i)
                        rebuild = broken = True
                        continue
                    if out[0] == "ok":
                        _, idx, result, roots, rounds, report = out
                        _absorb_worker_report(robustness, report)
                        outcomes[idx] = (result, roots, rounds)
                    elif out[0] == "deadline":
                        _, idx, exc_payload, report = out
                        _absorb_worker_report(robustness, report)
                        if deadline_hit is None:
                            deadline_hit = exc_payload
                        attempts[idx] = max(attempts[idx], self.retries + 1)
                    else:
                        _, idx, err, tb, report = out
                        _absorb_worker_report(robustness, report)
                        last_error[idx] = (err, tb)
                        failed.append(idx)
                if rebuild:
                    self._recycle(pool, kill=timed_out)
                    pool = None
                retriable = [i for i in failed if attempts[i] <= self.retries]
                pending = sorted(retriable + refunded)
                for i in failed:
                    if attempts[i] > self.retries:
                        err, tb = last_error[i]
                        outcomes[i] = JobFailure(
                            index=i, graph=jobs[i].graph_name(),
                            method=jobs[i].method, attempts=attempts[i],
                            error=err, traceback=tb,
                        )
                if deadline_hit is not None:
                    # One expired budget expires the whole batch call —
                    # time is shared; finish harvesting, then surface it.
                    raise DeadlineExceeded(
                        deadline_hit["deadline_ms"],
                        queued_ms=deadline_hit["queued_ms"],
                        running_ms=deadline_hit["running_ms"],
                        where=deadline_hit.get("where", "round"),
                    )
                if retriable:
                    time.sleep(self.retry.delay(retry_round))
                    retry_round += 1
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        return outcomes


def resolve_scheduler(spec=None, workers=None):
    """Normalize ``scheduler=``/``workers=`` into a scheduler instance.

    ``None`` infers from ``workers``: serial for ``None``/0/1, a process
    pool otherwise.  Strings name the two built-ins; anything with an
    ``execute`` method passes through (bring your own scheduler — accept
    the ``robustness=`` keyword to participate in fault injection).
    """
    if spec is None:
        if workers is None or int(workers) <= 1:
            return SerialScheduler()
        return ProcessPoolScheduler(workers)
    if isinstance(spec, str):
        if spec == "serial":
            return SerialScheduler()
        if spec == "process":
            return ProcessPoolScheduler(workers)
        raise ValueError(
            f"unknown scheduler {spec!r}; choose 'serial' or 'process' "
            f"(or pass a scheduler instance)"
        )
    if hasattr(spec, "execute"):
        return spec
    raise TypeError(f"cannot interpret {spec!r} as a scheduler")


# ---------------------------------------------------------------------------
# The orchestrator color_many calls.
# ---------------------------------------------------------------------------
def run_jobs(jobs, *, workers=None, scheduler=None, backend=None,
             backend_opts=None, config=None, observe=None, cache=None,
             validate=True, faults=None, health=None, store=None,
             deadline_ms=None) -> list:
    """Run a normalized job list through cache + scheduler + observation.

    Returns one entry per job, in submission order: a
    :class:`~repro.coloring.base.ColoringResult` or a
    :class:`~repro.parallel.jobs.JobFailure`.  Cache hits are resolved in
    the coordinator and never reach a worker; worker subtraces merge into
    the batch tracer as ``worker`` spans; worker round records replay
    into the batch recorder.

    ``store=`` selects the graph arena (see :mod:`repro.graph.store`):
    with ``'shm'`` or ``'mmap'`` the coordinator publishes each unique
    topology once and ships workers a :class:`~repro.graph.store
    .GraphHandle` instead of a pickled graph, so workers attach
    zero-copy.  ``None``/``'heap'`` keeps today's pickle path.  A store
    the coordinator created for this batch is closed — its shm segments
    unlinked — when the batch returns, even on error; pass a
    :class:`~repro.graph.store.GraphStore` *instance* to manage the
    lifetime yourself (e.g. keep arenas warm across batches).

    ``faults=`` / ``health=`` attach the robustness layer (see
    :mod:`repro.faults`).  When the health policy permits degradation,
    jobs the scheduler exhausted retries on are re-run once through a
    fault-free :class:`SerialScheduler` (the pool → serial chain) —
    recorded as a ``scheduler`` degradation event — before a
    :class:`JobFailure` is accepted as final.
    """
    if config is not None:
        from ..engine.config import normalize_config

        merged = normalize_config(
            "run_jobs",
            config,
            {
                "backend": backend, "backend_opts": backend_opts,
                "store": store, "workers": workers, "scheduler": scheduler,
                "cache": cache, "faults": faults, "health": health,
                "observe": observe, "deadline_ms": deadline_ms,
            },
        )
        backend, backend_opts = merged["backend"], merged["backend_opts"]
        store, workers = merged["store"], merged["workers"]
        scheduler, cache = merged["scheduler"], merged["cache"]
        faults, health = merged["faults"], merged["health"]
        observe, deadline_ms = merged["observe"], merged["deadline_ms"]
    jobs = list(jobs)
    observation = resolve_observe(observe)
    tracer, recorder = observation.tracer, observation.recorder
    cache_obj = resolve_cache(cache)
    sched = resolve_scheduler(scheduler, workers)
    robustness = resolve_robustness(faults, health)
    if robustness is not None and robustness.log.tracer is None:
        robustness.log.tracer = tracer
    control = resolve_control(deadline_ms)

    # Circuit breaker: while open, don't pay for a process pool that has
    # been failing — route straight to the serial degradation chain.
    breaker = robustness.breaker if robustness is not None else None
    breaker_guarded = (
        breaker is not None and getattr(sched, "name", None) == "process"
    )
    if breaker_guarded and not breaker.allow():
        robustness.degrade(
            "breaker", "process", "serial", "open",
            f"breaker {breaker.name!r} open; "
            f"{breaker.snapshot()['cooldown_left']} cooldown consults left",
        )
        sched = SerialScheduler()
        breaker_guarded = False

    from ..graph.store import GraphStore, resolve_store

    store_obj = resolve_store(store) if store is not None else None
    # A store we built from a spec string is batch-scoped; an instance the
    # caller passed is theirs to close.
    own_store = store_obj is not None and not isinstance(store, GraphStore)
    crossing_processes = getattr(sched, "name", None) == "process"
    if store_obj is not None and store_obj.kind != "heap":
        published = {}  # digest -> (placed graph, handle)
        shipped = []
        for job in jobs:
            digest = job.graph.content_digest()
            entry = published.get(digest)
            if entry is None:
                entry = published[digest] = store_obj.publish(job.graph)
            placed, handle = entry
            shipped.append(ColorJob(placed, job.method, job.options, handle=handle))
        jobs = shipped
    elif crossing_processes:
        # Heap path: memoize each unique digest *before* the jobs pickle,
        # so the memo travels and no worker re-hashes the arrays.
        for job in jobs:
            job.graph.content_digest()

    results: list = [None] * len(jobs)
    keys: list = [None] * len(jobs)

    def _absorb(index, outcome) -> None:
        """Land one scheduler outcome at its batch position."""
        if isinstance(outcome, JobFailure):
            # Re-key the failure to its position in the full batch.
            results[index] = JobFailure(
                index=index, graph=outcome.graph, method=outcome.method,
                attempts=outcome.attempts, error=outcome.error,
                traceback=outcome.traceback,
            )
            return
        result, roots, rounds = outcome
        if tracer is not None and roots:
            tracer.merge_subtrace(
                roots, label=f"job-{index}:{jobs[index].label()}",
                scheme=jobs[index].method,
                graph=jobs[index].graph_name(),
            )
        if recorder is not None and rounds:
            recorder.rounds.extend(rounds)
        if observation.active:
            result.extra.setdefault("observation", observation)
        if cache_obj is not None and keys[index] is not None:
            cache_obj.put(keys[index], result)
            if robustness is not None:
                spec = robustness.fire("cache-corrupt", job=index)
                if spec is not None:
                    cache_obj.corrupt_disk_entry(keys[index])
        results[index] = result

    # Ambient for the coordinator-side work too, so cache quarantines
    # found during the lookup scan land in the batch degradation log.
    # The finally leg retires a batch-scoped store: shm segments unlink
    # (crash-safe — the atexit sweep covers even a skipped finally), mmap
    # temp containers delete.  Worker mappings don't pin the unlink.
    try:
        with _fault_runtime.activate(robustness):
            to_run: list[int] = []
            for i, job in enumerate(jobs):
                if cache_obj is not None:
                    keys[i] = job_cache_key(
                        job.graph, job.method, job.options, backend, backend_opts
                    )
                    hit = cache_obj.get(keys[i])
                    if tracer is not None:
                        tracer.event(f"result-cache:{job.label()}", "cache",
                                     hit=int(hit is not None), miss=int(hit is None))
                    if hit is not None:
                        if observation.active:
                            hit.extra.setdefault("observation", observation)
                        results[i] = hit
                        continue
                to_run.append(i)

            if not to_run:
                return results
            execute_kwargs = dict(
                backend=backend, backend_opts=backend_opts, validate=validate,
                want_trace=tracer is not None, want_rounds=recorder is not None,
            )
            if robustness is not None:
                execute_kwargs["robustness"] = robustness
            if control is not None:
                execute_kwargs["control"] = control
            outcomes = sched.execute([jobs[i] for i in to_run], **execute_kwargs)
            for i, out in zip(to_run, outcomes):
                _absorb(i, out)

            # Degradation chain: exhausted-retry failures get one fault-free
            # serial pass before a JobFailure becomes the final answer.
            still_failed = [
                i for i in to_run if isinstance(results[i], JobFailure)
            ]
            if breaker_guarded:
                if still_failed:
                    if breaker.record_failure(
                        f"jobs={still_failed} exhausted retries"
                    ):
                        robustness.degrade(
                            "breaker", "closed", "open", "tripped",
                            f"{breaker.failure_threshold} consecutive "
                            f"failed batches",
                        )
                else:
                    breaker.record_success()
            if (
                still_failed
                and robustness is not None
                and robustness.policy.degrade
                and getattr(sched, "name", None) != "serial"
            ):
                robustness.degrade(
                    "scheduler", getattr(sched, "name", "?"), "serial",
                    "retries-exhausted", f"jobs={still_failed}",
                )
                healer = Robustness(
                    injector=None, policy=robustness.policy, log=robustness.log
                )
                serial_out = SerialScheduler().execute(
                    [jobs[i] for i in still_failed],
                    backend=backend, backend_opts=backend_opts, validate=validate,
                    want_trace=tracer is not None,
                    want_rounds=recorder is not None,
                    robustness=healer,
                    control=control,
                )
                for i, out in zip(still_failed, serial_out):
                    _absorb(i, out)
        return results
    finally:
        if own_store and store_obj is not None:
            store_obj.close()
