"""Batch schedulers: shard (graph, scheme) jobs across worker processes.

The simulation is CPU-bound pure Python, so independent jobs scale
across *processes* (the GIL rules out threads).  Two schedulers share
one contract:

* :class:`SerialScheduler` — in-process, one job at a time; the
  fallback and the reference the process pool must match byte-for-byte.
* :class:`ProcessPoolScheduler` — a ``concurrent.futures`` process
  pool.  Each worker process lazily builds its **own**
  :class:`~repro.engine.context.ExecutionContext` and canonicalizes
  unpickled graphs by content digest, so upload caching still amortizes
  when a worker sees the same graph twice.  Results stream back in
  submission order; a job that raises, crashes its worker, or exceeds
  ``timeout_s`` is retried with exponential backoff and, once attempts
  are exhausted, surfaced as a structured
  :class:`~repro.parallel.jobs.JobFailure` instead of killing the batch.

Determinism: the simulated device is deterministic, so colors and
iteration counts are byte-identical across schedulers and worker
counts.  Simulated *timings* of a job can differ from a shared-context
serial run (each worker's device starts with cold caches); see
docs/PARALLEL.md.

:func:`run_jobs` is the orchestrator ``color_many`` calls: result-cache
lookups happen in the coordinator (hits never reach a worker), per-job
worker subtraces merge into the batch tracer, and per-round records
replay into the batch recorder.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

from ..obs.observe import resolve_observe
from .cache import job_cache_key, resolve_cache
from .jobs import ColorJob, JobFailure

__all__ = [
    "SerialScheduler",
    "ProcessPoolScheduler",
    "resolve_scheduler",
    "run_jobs",
]


# ---------------------------------------------------------------------------
# The shared per-job runner (used in-process by SerialScheduler and inside
# worker processes by ProcessPoolScheduler).
# ---------------------------------------------------------------------------
def _run_one(ctx_map: dict, job: ColorJob, backend, backend_opts: dict,
             validate: bool, want_trace: bool, want_rounds: bool):
    """Execute one job; returns ``(result, trace_roots, round_records)``.

    Untraced device jobs share the ``ctx_map`` ExecutionContext (upload
    caching, pooled buffers); observed jobs get an ephemeral context with
    a job-local tracer/recorder whose contents the coordinator merges.
    """
    from ..coloring.api import ENGINE_RECIPES, color_graph
    from ..engine.context import ExecutionContext
    from ..metrics.recorder import Recorder
    from ..obs.observe import Observation
    from ..obs.tracer import Tracer

    tracer = Tracer() if want_trace else None
    recorder = Recorder() if want_rounds else None
    observed = tracer is not None or recorder is not None
    if job.method in ENGINE_RECIPES:
        if observed:
            ctx = ExecutionContext(
                backend=backend,
                observe=Observation(tracer=tracer, recorder=recorder),
                **dict(backend_opts or {}),
            )
        else:
            ctx = ctx_map.get("ctx")
            if ctx is None:
                ctx = ctx_map["ctx"] = ExecutionContext(
                    backend=backend, **dict(backend_opts or {})
                )
        result = ctx.run(job.graph, job.method, validate=validate, **job.options)
    else:
        # Host-side schemes take no backend; in a batch the backend applies
        # to the device jobs only.
        observe = Observation(tracer=tracer, recorder=recorder) if observed else None
        result = color_graph(
            job.graph, job.method, validate=validate, observe=observe, **job.options
        )
    # The coordinator attaches its own observation handle.
    result.extra.pop("observation", None)
    return (
        result,
        tracer.roots if tracer is not None else None,
        recorder.rounds if recorder is not None else None,
    )


# ---------------------------------------------------------------------------
# Worker-process side of the process pool.
# ---------------------------------------------------------------------------
#: Per-worker-process state: the backend spec (from the initializer), the
#: lazily built ExecutionContext, and unpickled graphs keyed by content
#: digest so repeat jobs on one graph hit the context's upload cache.
_WORKER_STATE: dict = {}


def _worker_init(backend, backend_opts: dict) -> None:
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        backend=backend, backend_opts=dict(backend_opts or {}),
        ctx_map={}, graphs={},
    )


def _worker_run(payload):
    index, job, validate, want_trace, want_rounds = payload
    try:
        graph = _WORKER_STATE["graphs"].setdefault(job.graph.content_digest(), job.graph)
        canonical = ColorJob(graph, job.method, job.options)
        result, roots, rounds = _run_one(
            _WORKER_STATE["ctx_map"], canonical,
            _WORKER_STATE["backend"], _WORKER_STATE["backend_opts"],
            validate, want_trace, want_rounds,
        )
        return ("ok", index, result, roots, rounds)
    except Exception as exc:  # surfaced as a structured per-job error
        return ("err", index, repr(exc), traceback.format_exc())


# ---------------------------------------------------------------------------
# Schedulers.
# ---------------------------------------------------------------------------
class SerialScheduler:
    """Run jobs one at a time in this process (the reference order)."""

    name = "serial"

    def __init__(self, *, retries: int = 0, backoff_s: float = 0.0) -> None:
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)

    def execute(self, jobs, *, backend=None, backend_opts=None, validate=True,
                want_trace=False, want_rounds=False):
        ctx_map: dict = {}
        outcomes = []
        for i, job in enumerate(jobs):
            attempt = 0
            while True:
                attempt += 1
                try:
                    outcomes.append(_run_one(
                        ctx_map, job, backend, backend_opts or {},
                        validate, want_trace, want_rounds,
                    ))
                    break
                except Exception as exc:
                    if attempt > self.retries:
                        outcomes.append(JobFailure(
                            index=i, graph=getattr(job.graph, "name", "?"),
                            method=job.method, attempts=attempt,
                            error=repr(exc), traceback=traceback.format_exc(),
                        ))
                        break
                    time.sleep(self.backoff_s * (2 ** (attempt - 1)))
        return outcomes


class ProcessPoolScheduler:
    """Shard jobs across a pool of worker processes.

    Parameters
    ----------
    workers:
        Pool size (default: the machine's CPU count).
    retries:
        Extra attempts per failed job (default 2 → up to 3 attempts).
    backoff_s:
        Base sleep between retry rounds, doubled each round.
    timeout_s:
        Per-job wait budget; a job exceeding it is failed (and the pool
        rebuilt, since the hung worker's slot is lost).  ``None`` waits
        forever.
    mp_context:
        A ``multiprocessing`` context, e.g. ``get_context("spawn")``;
        default is the platform default (fork on Linux — cheap).
    """

    name = "process"

    def __init__(self, workers: int | None = None, *, retries: int = 2,
                 backoff_s: float = 0.05, timeout_s: float | None = None,
                 mp_context=None) -> None:
        self.workers = max(1, int(workers) if workers else (os.cpu_count() or 1))
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.timeout_s = timeout_s
        self.mp_context = mp_context

    def _new_pool(self, backend, backend_opts):
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self.mp_context,
            initializer=_worker_init,
            initargs=(backend, dict(backend_opts or {})),
        )

    def execute(self, jobs, *, backend=None, backend_opts=None, validate=True,
                want_trace=False, want_rounds=False):
        if backend is not None and not isinstance(backend, str):
            raise TypeError(
                "the process scheduler needs a picklable backend spec: pass "
                "a backend *name* ('gpusim'/'cpusim') plus options, not an "
                "instance (each worker builds its own)"
            )
        outcomes: list = [None] * len(jobs)
        attempts = [0] * len(jobs)
        last_error = [("", "")] * len(jobs)
        pending = list(range(len(jobs)))
        pool = None
        retry_round = 0
        try:
            while pending:
                if pool is None:
                    pool = self._new_pool(backend, backend_opts)
                futures = []
                for i in pending:
                    attempts[i] += 1
                    payload = (i, jobs[i], validate, want_trace, want_rounds)
                    futures.append((i, pool.submit(_worker_run, payload)))
                failed, rebuild, broken, timed_out = [], False, False, False
                for i, fut in futures:  # submission order == streaming order
                    if broken:
                        last_error[i] = ("BrokenProcessPool: worker process died", "")
                        failed.append(i)
                        continue
                    try:
                        out = fut.result(timeout=self.timeout_s)
                    except FutureTimeoutError:
                        fut.cancel()
                        last_error[i] = (
                            f"TimeoutError: no result within {self.timeout_s}s", "")
                        failed.append(i)
                        rebuild = timed_out = True  # a hung worker occupies its slot
                        continue
                    except BrokenProcessPool:
                        last_error[i] = ("BrokenProcessPool: worker process died", "")
                        failed.append(i)
                        rebuild = broken = True
                        continue
                    if out[0] == "ok":
                        _, idx, result, roots, rounds = out
                        outcomes[idx] = (result, roots, rounds)
                    else:
                        _, idx, err, tb = out
                        last_error[idx] = (err, tb)
                        failed.append(idx)
                if rebuild:
                    # Can't wait on a hung worker; dead pools join instantly.
                    pool.shutdown(wait=not timed_out, cancel_futures=True)
                    pool = None
                pending = [i for i in failed if attempts[i] <= self.retries]
                for i in failed:
                    if attempts[i] > self.retries:
                        err, tb = last_error[i]
                        outcomes[i] = JobFailure(
                            index=i, graph=getattr(jobs[i].graph, "name", "?"),
                            method=jobs[i].method, attempts=attempts[i],
                            error=err, traceback=tb,
                        )
                if pending:
                    time.sleep(self.backoff_s * (2 ** retry_round))
                    retry_round += 1
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        return outcomes


def resolve_scheduler(spec=None, workers=None):
    """Normalize ``scheduler=``/``workers=`` into a scheduler instance.

    ``None`` infers from ``workers``: serial for ``None``/0/1, a process
    pool otherwise.  Strings name the two built-ins; anything with an
    ``execute`` method passes through (bring your own scheduler).
    """
    if spec is None:
        if workers is None or int(workers) <= 1:
            return SerialScheduler()
        return ProcessPoolScheduler(workers)
    if isinstance(spec, str):
        if spec == "serial":
            return SerialScheduler()
        if spec == "process":
            return ProcessPoolScheduler(workers)
        raise ValueError(
            f"unknown scheduler {spec!r}; choose 'serial' or 'process' "
            f"(or pass a scheduler instance)"
        )
    if hasattr(spec, "execute"):
        return spec
    raise TypeError(f"cannot interpret {spec!r} as a scheduler")


# ---------------------------------------------------------------------------
# The orchestrator color_many calls.
# ---------------------------------------------------------------------------
def run_jobs(jobs, *, workers=None, scheduler=None, backend=None,
             backend_opts=None, observe=None, cache=None, validate=True) -> list:
    """Run a normalized job list through cache + scheduler + observation.

    Returns one entry per job, in submission order: a
    :class:`~repro.coloring.base.ColoringResult` or a
    :class:`~repro.parallel.jobs.JobFailure`.  Cache hits are resolved in
    the coordinator and never reach a worker; worker subtraces merge into
    the batch tracer as ``worker`` spans; worker round records replay
    into the batch recorder.
    """
    jobs = list(jobs)
    observation = resolve_observe(observe)
    tracer, recorder = observation.tracer, observation.recorder
    cache_obj = resolve_cache(cache)
    sched = resolve_scheduler(scheduler, workers)

    results: list = [None] * len(jobs)
    keys: list = [None] * len(jobs)
    to_run: list[int] = []
    for i, job in enumerate(jobs):
        if cache_obj is not None:
            keys[i] = job_cache_key(
                job.graph, job.method, job.options, backend, backend_opts
            )
            hit = cache_obj.get(keys[i])
            if tracer is not None:
                tracer.event(f"result-cache:{job.label()}", "cache",
                             hit=int(hit is not None), miss=int(hit is None))
            if hit is not None:
                if observation.active:
                    hit.extra.setdefault("observation", observation)
                results[i] = hit
                continue
        to_run.append(i)

    if to_run:
        outcomes = sched.execute(
            [jobs[i] for i in to_run],
            backend=backend, backend_opts=backend_opts, validate=validate,
            want_trace=tracer is not None, want_rounds=recorder is not None,
        )
        for i, out in zip(to_run, outcomes):
            if isinstance(out, JobFailure):
                # Re-key the failure to its position in the full batch.
                results[i] = JobFailure(
                    index=i, graph=out.graph, method=out.method,
                    attempts=out.attempts, error=out.error,
                    traceback=out.traceback,
                )
                continue
            result, roots, rounds = out
            if tracer is not None and roots:
                tracer.merge_subtrace(
                    roots, label=f"job-{i}:{jobs[i].label()}",
                    scheme=jobs[i].method,
                    graph=getattr(jobs[i].graph, "name", "?"),
                )
            if recorder is not None and rounds:
                recorder.rounds.extend(rounds)
            if observation.active:
                result.extra.setdefault("observation", observation)
            if cache_obj is not None and keys[i] is not None:
                cache_obj.put(keys[i], result)
            results[i] = result
    return results
