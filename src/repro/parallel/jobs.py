"""Job descriptions for batched parallel execution.

A *job* is one (graph, method, options) cell of a batch.  ``color_many``
accepts plain graphs (one method for the whole batch) or explicit
:class:`ColorJob` entries / ``(graph, method[, options])`` tuples for
heterogeneous batches; :func:`normalize_jobs` folds every accepted
spelling into a list of :class:`ColorJob`.

Failures that survive the scheduler's retries come back as
:class:`JobFailure` entries in the result list — same position as the
job, so the batch's successes are never lost to one bad cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.csr import CSRGraph

__all__ = ["ColorJob", "JobFailure", "normalize_jobs"]


@dataclass(frozen=True)
class ColorJob:
    """One cell of a batch: color ``graph`` with ``method`` and ``options``.

    ``method=None`` means "use the batch default" (resolved by
    :func:`normalize_jobs`).  Options are scheme keywords only — engine
    keywords (``backend=``, ``observe=``, ...) belong to the batch call.

    ``handle`` is the zero-copy leg (see :mod:`repro.graph.store`): when
    the coordinator has published the graph to a shared-memory or mmap
    arena, the job pickles *without* its topology — workers receive the
    ~200-byte :class:`~repro.graph.store.GraphHandle` and attach in
    place.  A job that crossed a process boundary this way has
    ``graph=None`` until the worker resolves it.
    """

    graph: CSRGraph | None
    method: str | None = None
    options: dict = field(default_factory=dict)
    handle: object | None = field(default=None, compare=False)

    def label(self) -> str:
        name = getattr(self.graph, "name", None)
        if name is None and self.handle is not None:
            name = getattr(self.handle, "name", None)
        return f"{self.method}:{name or '?'}"

    def graph_name(self) -> str:
        """Best-effort graph name for failure records and labels."""
        name = getattr(self.graph, "name", None)
        if name is None and self.handle is not None:
            name = getattr(self.handle, "name", None)
        return name or "?"

    # -- pickling: a handle-bearing job ships its address, not its bytes --
    def __getstate__(self) -> dict:
        state = {
            "graph": self.graph,
            "method": self.method,
            "options": self.options,
            "handle": self.handle,
        }
        if self.handle is not None and getattr(self.handle, "kind", "heap") != "heap":
            state["graph"] = None  # the worker attaches from the handle
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)


@dataclass(frozen=True)
class JobFailure:
    """Structured record of a job that failed after every retry.

    Appears in the result list at the failed job's position.  ``error``
    is the exception's ``repr``; ``traceback`` the worker-side formatted
    traceback (empty when the worker died without reporting, e.g. a
    crash or timeout).
    """

    index: int
    graph: str
    method: str
    attempts: int
    error: str
    traceback: str = ""

    def __bool__(self) -> bool:  # failed cells are falsy, results truthy
        return False


def normalize_jobs(graphs, *, default_method: str, default_options: dict | None = None) -> list[ColorJob]:
    """Fold every accepted batch spelling into a ``list[ColorJob]``.

    Accepted entries: a :class:`~repro.graph.csr.CSRGraph` (uses the
    batch default method/options), a :class:`ColorJob`, or a tuple
    ``(graph,)`` / ``(graph, method)`` / ``(graph, method, options)``.
    Per-job options are merged over the batch defaults (job wins).
    """
    defaults = dict(default_options or {})
    jobs: list[ColorJob] = []
    for entry in graphs:
        if isinstance(entry, ColorJob):
            method = entry.method or default_method
            options = {**defaults, **entry.options}
            jobs.append(ColorJob(entry.graph, method, options))
        elif isinstance(entry, CSRGraph):
            jobs.append(ColorJob(entry, default_method, dict(defaults)))
        elif isinstance(entry, tuple) and entry and isinstance(entry[0], CSRGraph):
            if len(entry) > 3:
                raise TypeError(
                    f"job tuple has {len(entry)} elements; expected "
                    f"(graph,), (graph, method) or (graph, method, options)"
                )
            graph = entry[0]
            method = entry[1] if len(entry) > 1 and entry[1] else default_method
            options = {**defaults, **(entry[2] if len(entry) > 2 else {})}
            jobs.append(ColorJob(graph, method, options))
        else:
            raise TypeError(
                f"cannot interpret {entry!r} as a coloring job: expected a "
                f"CSRGraph, a ColorJob, or a (graph, method[, options]) tuple"
            )
    return jobs
