# Convenience targets for the reproduction workflow.

.PHONY: install test bench reproduce examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only

reproduce:
	python examples/reproduce_paper.py 16

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
